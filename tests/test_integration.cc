/**
 * @file
 * End-to-end integration tests on real molecule slices: compile an
 * actual LiH (12-qubit) UCCSD fragment with every compiler in the
 * repository on a 14-qubit device and verify functional equivalence
 * with the statevector simulator -- real Jordan-Wigner chain
 * structure, real block similarity, bridging ancillas and all.
 */

#include <gtest/gtest.h>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

/** A deterministic 5-block LiH slice (doubles with long chains). */
std::vector<PauliBlock>
lihSlice(const std::string &encoder)
{
    auto blocks = buildMolecule(moleculeByName("LiH"), encoder);
    // Pick a spread of blocks: first two singles, three doubles.
    std::vector<PauliBlock> slice = {blocks[0], blocks[5], blocks[20],
                                     blocks[45], blocks[80]};
    return slice;
}

class LihSliceCompilers
    : public ::testing::TestWithParam<std::pair<const char *, int>>
{
};

TEST_P(LihSliceCompilers, FunctionallyEquivalent)
{
    auto [encoder, which] = GetParam();
    auto blocks = lihSlice(encoder);
    CouplingGraph hw = heavyHexTopology(2, 8); // 14 qubits (incl. 2
                                               // bridges per gap)
    ASSERT_GE(hw.numQubits(), 13);

    CompileResult res;
    switch (which) {
      case 0:
        res = compileTetris(blocks, hw);
        break;
      case 1:
        res = compilePaulihedral(blocks, hw);
        break;
      case 2:
        res = compileMaxCancel(blocks, hw);
        break;
      case 3:
        res = compileTketProxy(blocks, hw);
        break;
      default:
        res = compilePcoastProxy(blocks, hw);
        break;
    }

    Rng rng(97 + which);
    EXPECT_TRUE(
        test::checkCompiledEquivalence(blocks, res, hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw));
    EXPECT_GT(res.stats.cnotCount, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothEncodersAllCompilers, LihSliceCompilers,
    ::testing::Values(std::pair{"jw", 0}, std::pair{"jw", 1},
                      std::pair{"jw", 2}, std::pair{"jw", 3},
                      std::pair{"jw", 4}, std::pair{"bk", 0},
                      std::pair{"bk", 1}, std::pair{"bk", 2}));

TEST(Integration, TetrisBeatsNaiveOnLihSlice)
{
    auto blocks = lihSlice("jw");
    CouplingGraph hw = heavyHexTopology(2, 8);
    CompileResult tet = compileTetris(blocks, hw);
    EXPECT_LT(tet.stats.logicalCnots, naiveCnotCount(blocks));
}

TEST(Integration, FullLihCompilesOnAllBackends)
{
    // Whole-molecule smoke test: 640 strings, three devices.
    auto blocks = buildMolecule(moleculeByName("LiH"), "jw");
    for (const CouplingGraph &hw :
         {ibmIthaca65(), googleSycamore64(), gridTopology(4, 4)}) {
        CompileResult res = compileTetris(blocks, hw);
        EXPECT_TRUE(test::isHardwareCompliant(res.circuit, hw))
            << hw.name();
        EXPECT_GT(res.stats.cancelRatio, 0.2) << hw.name();
    }
}

TEST(Integration, DenserDeviceNeedsFewerSwaps)
{
    auto blocks = buildMolecule(moleculeByName("BeH2"), "jw");
    CompileResult hex = compileTetris(blocks, ibmIthaca65());
    CompileResult syc = compileTetris(blocks, googleSycamore64());
    EXPECT_LT(syc.stats.swapCount, hex.stats.swapCount);
}

} // namespace
} // namespace tetris
