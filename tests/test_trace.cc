/**
 * @file
 * Span-tracer tests: zero-cost disabled behavior, span recording and
 * nesting via TraceSpan, cross-thread buffer merging with distinct
 * track ids, Chrome trace-event JSON shape and balance, file export,
 * and the engine integration (a traced sweep emits queue_wait /
 * compile / stage / job spans labelled with the job name).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "chem/uccsd.hh"
#include "engine/engine.hh"
#include "engine/stats.hh"
#include "engine/trace.hh"
#include "hardware/topologies.hh"

namespace tetris
{
namespace
{

/** Occurrences of `needle` in `haystack`. */
size_t
countOf(const std::string &haystack, const std::string &needle)
{
    size_t count = 0;
    for (size_t pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + needle.size()))
        ++count;
    return count;
}

/**
 * Structural JSON check without a parser: every brace/bracket closes
 * in order and quotes balance outside of escapes. Catches the whole
 * class of "emitted half an object" exporter bugs.
 */
bool
balancedJson(const std::string &doc)
{
    std::vector<char> stack;
    bool in_string = false;
    for (size_t i = 0; i < doc.size(); ++i) {
        char c = doc[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_string && stack.empty();
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    Tracer tracer;
    EXPECT_FALSE(tracer.enabled());

    tracer.recordSpan("compile", "compile", 0, 100, "job");
    {
        TraceSpan span(&tracer, "verify", "verify");
    }
    {
        TraceSpan span(nullptr, "verify", "verify");
    }

    EXPECT_EQ(tracer.eventCount(), 0u);
    const std::string doc = tracer.toJson();
    EXPECT_TRUE(balancedJson(doc));
    EXPECT_NE(doc.find("\"traceEvents\":[]"), std::string::npos);
}

TEST(Trace, RecordSpanExportsChromeEvents)
{
    Tracer tracer;
    tracer.enable();
    const uint64_t epoch = tracer.epochNs();

    tracer.recordSpan("job", "job", epoch + 1000, epoch + 501000,
                      "lih/tetris");
    tracer.recordSpan("compile", "compile", epoch + 2000,
                      epoch + 402000);
    // End-before-start clamps to a zero-length span, never wraps.
    tracer.recordSpan("verify", "verify", epoch + 5000, epoch + 4000);

    EXPECT_EQ(tracer.eventCount(), 3u);
    const std::string doc = tracer.toJson();
    EXPECT_TRUE(balancedJson(doc));
    EXPECT_NE(doc.find("\"name\":\"job\""), std::string::npos);
    EXPECT_NE(doc.find("\"cat\":\"compile\""), std::string::npos);
    EXPECT_EQ(countOf(doc, "\"ph\":\"X\""), 3u);
    // Durations are exported as microseconds relative to the epoch.
    EXPECT_NE(doc.find("\"dur\":500"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":400"), std::string::npos);
    EXPECT_NE(doc.find("\"dur\":0"), std::string::npos);
    // The job label rides in args; unlabeled spans omit args.
    EXPECT_EQ(countOf(doc, "\"job\":\"lih/tetris\""), 1u);
    EXPECT_EQ(countOf(doc, "\"args\""), 1u);
    EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
}

TEST(Trace, TraceSpanRecordsOnceOnEarlyClose)
{
    Tracer tracer;
    tracer.enable();
    {
        TraceSpan span(&tracer, "disk_read", "disk", "h2/ph");
        span.close();
        span.close(); // idempotent
    }
    EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST(Trace, CrossThreadSpansMergeWithDistinctTracks)
{
    constexpr int kThreads = 4;
    constexpr int kSpansPerThread = 64;

    Tracer tracer;
    tracer.enable();
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&tracer] {
            for (int i = 0; i < kSpansPerThread; ++i) {
                const uint64_t now = steadyNowNs();
                tracer.recordSpan("compile", "compile", now, now + 10);
            }
        });
    }
    for (auto &w : workers)
        w.join();

    EXPECT_EQ(tracer.eventCount(),
              static_cast<size_t>(kThreads * kSpansPerThread));

    // Every recording thread gets its own track id, 0..N-1.
    const std::string doc = tracer.toJson();
    EXPECT_TRUE(balancedJson(doc));
    std::set<std::string> tids;
    for (int t = 0; t < kThreads; ++t) {
        // tid is the event's last key when no args follow, so the
        // closing brace makes the match exact.
        std::string tag = "\"tid\":" + std::to_string(t) + "}";
        EXPECT_EQ(countOf(doc, tag),
                  static_cast<size_t>(kSpansPerThread))
            << tag;
        tids.insert(tag);
    }
    EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));

    tracer.clear();
    EXPECT_EQ(tracer.eventCount(), 0u);
}

TEST(Trace, WriteFileProducesLoadableDocument)
{
    namespace fs = std::filesystem;
    const fs::path path =
        fs::temp_directory_path() /
        ("tetris-trace-test-" + std::to_string(::getpid()) + ".json");

    Tracer tracer;
    tracer.enable(path.string());
    const uint64_t epoch = tracer.epochNs();
    tracer.recordSpan("job", "job", epoch, epoch + 1000, "h2/tetris");
    ASSERT_TRUE(tracer.writeFile());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();
    EXPECT_TRUE(balancedJson(doc));
    EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(doc.find("\"h2/tetris\""), std::string::npos);

    std::error_code ec;
    fs::remove(path, ec);
}

TEST(Trace, WriteFileWithoutPathFails)
{
    Tracer tracer;
    tracer.enable();
    EXPECT_FALSE(tracer.writeFile());
}

TEST(Trace, EngineEmitsJobSpans)
{
    Tracer tracer;
    tracer.enable();

    EngineOptions opts;
    opts.tracer = &tracer;
    opts.verify = true;
    Engine engine(opts);

    auto hw = std::make_shared<const CouplingGraph>(lineTopology(8));
    std::vector<CompileJob> jobs;
    for (int seed = 0; seed < 3; ++seed) {
        CompileJob job;
        job.name = "trace/ucc" + std::to_string(seed);
        job.blocks = buildSyntheticUcc(5, 40 + seed);
        job.hw = hw;
        jobs.push_back(std::move(job));
    }
    auto results = engine.compileAll(std::move(jobs));
    ASSERT_EQ(results.size(), 3u);
    engine.drain();

    const std::string doc = tracer.toJson();
    EXPECT_TRUE(balancedJson(doc));
    // One queue_wait + one job span per dequeued submission, one
    // compile + three stage spans + one verify per fresh compile.
    EXPECT_EQ(countOf(doc, "\"name\":\"queue_wait\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"job\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"compile\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"schedule\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"synthesis\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"peephole\""), 3u);
    EXPECT_EQ(countOf(doc, "\"name\":\"verify\""), 3u);
    EXPECT_EQ(countOf(doc, "\"job\":\"trace/ucc0\""), 7u);

    // The same sweep fed the latency histograms.
    auto hists = engine.metrics().histogramSnapshots();
    EXPECT_EQ(hists.at("job.latency_ns").count, 3u);
    EXPECT_EQ(hists.at("job.queue_wait_ns").count, 3u);
}

TEST(Trace, EngineWithDefaultTracerRecordsNothingWhenUntraced)
{
    // TETRIS_TRACE is not set in the test environment, so the global
    // tracer must stay disabled and an untraced engine run must not
    // accumulate spans.
    ASSERT_EQ(std::getenv("TETRIS_TRACE"), nullptr)
        << "test environment unexpectedly sets TETRIS_TRACE";
    const size_t before = Tracer::global().eventCount();

    Engine engine;
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(6));
    CompileJob job;
    job.name = "untraced";
    job.blocks = buildSyntheticUcc(4, 11);
    job.hw = hw;
    engine.wait(engine.submit(job));

    EXPECT_FALSE(Tracer::global().enabled());
    EXPECT_EQ(Tracer::global().eventCount(), before);
}

TEST(Stats, SnapshotFormatsEngineState)
{
    Engine engine;
    auto hw = std::make_shared<const CouplingGraph>(lineTopology(6));
    CompileJob job;
    job.name = "stats/job";
    job.blocks = buildSyntheticUcc(4, 17);
    job.hw = hw;
    engine.wait(engine.submit(job));
    engine.drain();

    EXPECT_EQ(engine.submittedCount(), 1u);
    EXPECT_EQ(engine.startedCount(), 1u);
    EXPECT_EQ(engine.finishedCount(), 1u);

    const std::string body = formatStatsSnapshot(engine);
    EXPECT_NE(body.find("tetris_jobs_submitted 1"), std::string::npos);
    EXPECT_NE(body.find("tetris_jobs_finished 1"), std::string::npos);
    EXPECT_NE(body.find("tetris_count{name=\"jobs.completed\"} 1"),
              std::string::npos);
    EXPECT_NE(body.find("tetris_seconds{name=\"compile.total\"}"),
              std::string::npos);
    EXPECT_NE(body.find("tetris_job_latency_ns_count 1"),
              std::string::npos);
    EXPECT_NE(body.find("quantile=\"0.99\""), std::string::npos);
}

TEST(Stats, ReporterLifecycle)
{
    Engine engine;
    // Interval <= 0: no thread, stop() is a safe no-op.
    StatsReporter off(engine, 0.0);
    EXPECT_FALSE(off.active());
    off.stop();

    // A live reporter starts and joins cleanly even when stopped
    // long before its first tick fires.
    StatsReporter on(engine, 3600.0);
    EXPECT_TRUE(on.active());
    on.stop();
    EXPECT_FALSE(on.active());
}

TEST(Stats, IntervalFromEnvParsesStrictly)
{
    ::unsetenv("TETRIS_STATS_INTERVAL");
    EXPECT_EQ(StatsReporter::intervalFromEnv(), 0.0);
    ::setenv("TETRIS_STATS_INTERVAL", "0", 1);
    EXPECT_EQ(StatsReporter::intervalFromEnv(), 0.0);
    ::setenv("TETRIS_STATS_INTERVAL", "5", 1);
    EXPECT_EQ(StatsReporter::intervalFromEnv(), 5.0);
    ::setenv("TETRIS_STATS_INTERVAL", "junk", 1);
    EXPECT_EQ(StatsReporter::intervalFromEnv(), 0.0);
    ::setenv("TETRIS_STATS_INTERVAL", "-3", 1);
    EXPECT_EQ(StatsReporter::intervalFromEnv(), 0.0);
    ::unsetenv("TETRIS_STATS_INTERVAL");
}

} // namespace
} // namespace tetris
