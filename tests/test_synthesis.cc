/**
 * @file
 * Core synthesis tests: Tetris-IR construction, Algorithm 1 block
 * synthesis (root clustering, leaf attachment, bridging), and
 * simulator-verified functional equivalence on every path.
 */

#include <gtest/gtest.h>

#include "chem/uccsd.hh"
#include "core/synthesis.hh"
#include "core/tetris_ir.hh"
#include "hardware/topologies.hh"
#include "sim/statevector.hh"
#include "test_util.hh"

namespace tetris
{
namespace
{

/** Run one block through the synthesizer and check the unitary. */
void
expectBlockEquivalent(const PauliBlock &block, const CouplingGraph &hw,
                      const SynthesisOptions &opts, uint64_t seed,
                      SynthStats *stats_out = nullptr)
{
    const int num_logical = static_cast<int>(block.numQubits());
    Layout layout(num_logical, hw.numQubits());
    Circuit circ(hw.numQubits());
    BlockSynthesizer synth(hw, opts);
    SynthStats stats;
    TetrisBlock tb(block);
    synth.synthesizeBlock(tb, layout, circ, stats);
    if (stats_out)
        *stats_out = stats;

    CompileResult fake;
    fake.circuit = circ;
    fake.finalLayout = layout;
    Rng rng(seed);
    EXPECT_TRUE(test::checkCompiledEquivalence({block}, fake,
                                               hw.numQubits(), rng));
    EXPECT_TRUE(test::isHardwareCompliant(circ, hw));
}

TEST(TetrisIr, RootLeafSplitMatchesPaperExample)
{
    // Fig. 5: {X0 Y1 z z z, X0 X1 z z z(im), Y0 X1 z z z}.
    std::vector<PauliString> strings = {PauliString::fromText("XYZZZ"),
                                        PauliString::fromText("XXZZZ"),
                                        PauliString::fromText("YXZZZ")};
    TetrisBlock tb(PauliBlock{strings, 0.4});
    EXPECT_EQ(tb.rootSet(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(tb.leafSet(), (std::vector<size_t>{2, 3, 4}));
    EXPECT_EQ(tb.activeLength(), 5u);
    EXPECT_TRUE(tb.hasUniformRootSupport());
    EXPECT_EQ(tb.leafOp(3), PauliOp::Z);
}

TEST(TetrisIr, TextRendersCommonSectionLowerCase)
{
    std::vector<PauliString> strings = {PauliString::fromText("XYZZZ"),
                                        PauliString::fromText("XXZZZ"),
                                        PauliString::fromText("YXZZZ")};
    TetrisBlock tb(PauliBlock{strings, 0.4});
    std::string text = tb.toText();
    EXPECT_NE(text.find("XYzzz"), std::string::npos);
    // The interior string elides the common section entirely.
    EXPECT_NE(text.find("XX,"), std::string::npos);
}

TEST(TetrisIr, NonUniformRootSupportDetected)
{
    std::vector<PauliString> strings = {PauliString::fromText("XZZ"),
                                        PauliString::fromText("IZZ")};
    TetrisBlock tb(PauliBlock{strings, 0.4});
    EXPECT_FALSE(tb.hasUniformRootSupport());
}

TEST(TetrisIr, SimilarityMatchesEquationOne)
{
    // Blocks with leaf ops Z on {2,3,4} vs Z on {2,3}: C = 2,
    // S = 2 / (3 + 2 - 2) = 2/3.
    std::vector<PauliString> s1 = {PauliString::fromText("XYZZZ"),
                                   PauliString::fromText("YXZZZ")};
    std::vector<PauliString> s2 = {PauliString::fromText("XYZZI"),
                                   PauliString::fromText("YXZZI")};
    TetrisBlock a{PauliBlock{s1, 0.1}};
    TetrisBlock b{PauliBlock{s2, 0.1}};
    // The boundary-string tie-break adds at most 1e-3.
    EXPECT_NEAR(blockSimilarity(a, b), 2.0 / 3.0, 2e-3);
    EXPECT_NEAR(blockSimilarity(a, a), 1.0, 2e-3);
}

TEST(TetrisIr, SimilarityRequiresMatchingOperators)
{
    std::vector<PauliString> s1 = {PauliString::fromText("XYZZ"),
                                   PauliString::fromText("YXZZ")};
    std::vector<PauliString> s2 = {PauliString::fromText("XYXX"),
                                   PauliString::fromText("YXXX")};
    TetrisBlock a{PauliBlock{s1, 0.1}};
    TetrisBlock b{PauliBlock{s2, 0.1}};
    EXPECT_LT(blockSimilarity(a, b), 1e-2);
}

TEST(Synthesis, SingleStringOnLine)
{
    SynthesisOptions opts;
    PauliBlock b({PauliString::fromText("XZZY")}, 0.7);
    expectBlockEquivalent(b, lineTopology(4), opts, 1);
}

TEST(Synthesis, SingleQubitString)
{
    SynthesisOptions opts;
    PauliBlock b({PauliString::fromText("IZI")}, 0.7);
    expectBlockEquivalent(b, lineTopology(3), opts, 2);
}

TEST(Synthesis, BlockWithCancellationOnLine)
{
    // Paper Fig. 3: Y Z Z Z Y + X Z Z Z X.
    std::vector<PauliString> strings = {PauliString::fromText("YZZZY"),
                                        PauliString::fromText("XZZZX")};
    PauliBlock b(strings, 0.9);
    SynthesisOptions opts;
    opts.adaptiveFallbackFactor = 0.0;
    SynthStats stats;
    expectBlockEquivalent(b, lineTopology(5), opts, 3, &stats);
    EXPECT_EQ(stats.blocksWithCancellation, 1u);
}

TEST(Synthesis, StructuralCancellationSavesCnots)
{
    // 8-string double-excitation block with Z chains inside both
    // excitation pairs: Tetris emission must beat the naive count.
    JordanWignerEncoding enc(8);
    PauliBlock b = makeDoubleExcitation(enc, 0, 3, 4, 7, 0.5);
    std::vector<PauliBlock> blocks{b};

    SynthesisOptions opts;
    opts.adaptiveFallbackFactor = 0.0;
    CouplingGraph hw = lineTopology(8);
    Layout layout(8, 8);
    Circuit circ(8);
    BlockSynthesizer synth(hw, opts);
    SynthStats stats;
    synth.synthesizeBlock(TetrisBlock(b), layout, circ, stats);
    EXPECT_LT(stats.emittedCx, naiveCnotCount(blocks));
}

TEST(Synthesis, ScatteredStringNeedsSwapsAndStaysCorrect)
{
    // Active qubits at the two ends of a line force SWAP insertion
    // (bridging disabled).
    SynthesisOptions opts;
    opts.enableBridging = false;
    PauliBlock b({PauliString::fromText("ZIIIIZ")}, 0.4);
    SynthStats stats;
    expectBlockEquivalent(b, lineTopology(6), opts, 4, &stats);
    EXPECT_GT(stats.insertedSwaps, 0u);
}

TEST(Synthesis, BlockOnHeavyHex)
{
    JordanWignerEncoding enc(6);
    PauliBlock b = makeDoubleExcitation(enc, 0, 2, 3, 5, 0.8);
    expectBlockEquivalent(b, heavyHexTopology(2, 5), SynthesisOptions{},
                          5);
}

TEST(Synthesis, BlockOnSycamore)
{
    JordanWignerEncoding enc(6);
    PauliBlock b = makeDoubleExcitation(enc, 0, 1, 4, 5, 0.8);
    expectBlockEquivalent(b, sycamoreTopology(3, 3), SynthesisOptions{},
                          6);
}

TEST(Synthesis, BridgingUsesFreeAncillaAndRestoresIt)
{
    // Leaf qubits separated from the root cluster by a free middle
    // qubit: bridging should engage, and equivalence (which demands
    // ancillas end in |0>) must hold.
    std::vector<PauliString> strings = {
        PauliString::fromText("XYZZ"), PauliString::fromText("YXZZ")};
    PauliBlock b(strings, 0.6);
    // 7-qubit line: logicals 0..3 at positions 0..3; positions 4-6
    // free. Leaf set {2,3}.
    SynthesisOptions opts;
    opts.enableBridging = true;
    opts.adaptiveFallbackFactor = 0.0;
    SynthStats stats;
    expectBlockEquivalent(b, lineTopology(7), opts, 7, &stats);
}

TEST(Synthesis, BridgeEngagesAcrossFreeGap)
{
    // Arrange the layout so the leaf qubit is separated from the
    // root cluster by free |0> positions: logicals {0,1} (roots) at
    // positions 0,1; leaf logical 2 moved to position 4; positions
    // 2,3 free. The bridge (cost 2 per hop) beats SWAPs (cost w=3).
    std::vector<PauliString> strings = {PauliString::fromText("XYZ"),
                                        PauliString::fromText("YXZ")};
    PauliBlock b(strings, 0.6);
    CouplingGraph hw = lineTopology(5);

    auto run = [&](bool bridging, SynthStats &stats) {
        Layout layout(3, 5);
        Circuit circ(5);
        // Pre-route the leaf away from the pack; the SWAPs stay in
        // the circuit so equivalence still holds.
        circ.swap(2, 3);
        layout.applySwap(2, 3);
        circ.swap(3, 4);
        layout.applySwap(3, 4);
        SynthesisOptions opts;
        opts.enableBridging = bridging;
        opts.adaptiveFallbackFactor = 0.0;
        BlockSynthesizer synth(hw, opts);
        synth.synthesizeBlock(TetrisBlock(b), layout, circ, stats);
        CompileResult fake;
        fake.circuit = circ;
        fake.finalLayout = layout;
        Rng rng(8);
        EXPECT_TRUE(
            test::checkCompiledEquivalence({b}, fake, 5, rng));
        EXPECT_TRUE(test::isHardwareCompliant(circ, hw));
    };

    SynthStats with_bridge, without_bridge;
    run(true, with_bridge);
    run(false, without_bridge);
    EXPECT_GT(with_bridge.bridgeNodes, 0u);
    EXPECT_EQ(with_bridge.insertedSwaps, 0u);
    EXPECT_GT(without_bridge.insertedSwaps, 0u);
}

TEST(Synthesis, FallbackForNonUniformRootSupport)
{
    std::vector<PauliString> strings = {PauliString::fromText("XZZ"),
                                        PauliString::fromText("IZZ")};
    PauliBlock b(strings, 0.5);
    SynthStats stats;
    expectBlockEquivalent(b, lineTopology(3), SynthesisOptions{}, 10,
                          &stats);
    EXPECT_EQ(stats.blocksFallback, 1u);
}

TEST(Synthesis, SingleLeafChainMatchesClosedFormCancellation)
{
    // k strings over an L-qubit common section with a single leaf
    // tree cancel 2*(L-1)*(k-1)... equivalently the emitted count is
    // naive - savings. Verify the emitted count directly: leaf
    // internal edges emitted twice total instead of per string.
    std::vector<PauliString> strings;
    for (const char *t : {"XYZZZZ", "XXZZZZ", "ZXZZZZ", "YXZZZZ"})
        strings.push_back(PauliString::fromText(t));
    PauliBlock b(strings, 0.3);
    // Line topology, trivial layout: leaf {2..5} contiguous, roots
    // {0,1} contiguous: no swaps at all.
    CouplingGraph hw = lineTopology(6);
    Layout layout(6, 6);
    Circuit circ(6);
    SynthesisOptions opts;
    opts.adaptiveFallbackFactor = 0.0;
    BlockSynthesizer synth(hw, opts);
    SynthStats stats;
    synth.synthesizeBlock(TetrisBlock(b), layout, circ, stats);
    EXPECT_EQ(stats.insertedSwaps, 0u);
    // Per string: 1 connector*2 + 1 root edge*2 = 4; leaf internal
    // edges: 3, emitted twice = 6. Total = 4*4 + 6 = 22.
    EXPECT_EQ(stats.emittedCx, 22u);
    // Naive: 4 strings * 2*(6-1) = 40.
    EXPECT_EQ(naiveCnotCount({b}), 40u);
}

TEST(Synthesis, EstimateRootClusterCostIsZeroWhenClustered)
{
    std::vector<PauliString> strings = {PauliString::fromText("XYZZ"),
                                        PauliString::fromText("YXZZ")};
    TetrisBlock tb(PauliBlock{strings, 0.1});
    CouplingGraph hw = lineTopology(4);
    Layout layout(4, 4);
    BlockSynthesizer synth(hw, SynthesisOptions{});
    // Roots {0,1} adjacent: cost should be minimal (<= 1).
    EXPECT_LE(synth.estimateRootClusterCost(tb, layout), 1);
}

class SynthesisRandomBlocks : public ::testing::TestWithParam<int>
{
};

TEST_P(SynthesisRandomBlocks, EquivalentOnRandomDoubles)
{
    const int seed = GetParam();
    Rng rng(seed);
    const int n = 7;
    JordanWignerEncoding enc(n);
    auto picks = rng.sampleIndices(n, 4);
    std::vector<int> m(picks.begin(), picks.end());
    std::sort(m.begin(), m.end());
    PauliBlock b = makeDoubleExcitation(enc, m[0], m[1], m[2], m[3],
                                        rng.uniform(0.1, 1.0));
    expectBlockEquivalent(b, heavyHexTopology(2, 5), SynthesisOptions{},
                          seed * 31 + 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisRandomBlocks,
                         ::testing::Range(0, 16));

} // namespace
} // namespace tetris
