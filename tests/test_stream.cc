/**
 * @file
 * Differential correctness suite for the streaming frontend
 * (frontend/stream_compiler.hh): the same program compiled whole and
 * streamed at several window sizes must mean the same unitary.
 *
 * The load-bearing check is SEMANTIC, not syntactic: for each window
 * the per-chunk circuits are concatenated — legal because chunk N+1
 * is compiled from chunk N's final layout, so the wire states meet
 * exactly at the chunk boundary — and the combined circuit is run
 * through both equivalence checkers against the FULL block list.
 * Gate-for-gate comparison with the whole-program compile would be
 * wrong (the scheduler sees different horizons); unitary equality is
 * the actual contract.
 *
 * The corpus deliberately includes repeated same-axis rotations in
 * consecutive blocks (exercises cross-chunk peephole merges and the
 * conjugation checker's residual carry) and blocks whose strings do
 * NOT mutually commute (exercises the ordered-pool checker path).
 */

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "engine/engine.hh"
#include "frontend/pauli_parser.hh"
#include "frontend/qasm_parser.hh"
#include "frontend/stream_compiler.hh"
#include "frontend/workloads.hh"
#include "hardware/topologies.hh"
#include "serialize/stream_file.hh"
#include "verify/verify.hh"

namespace fs = std::filesystem;

namespace tetris
{
namespace
{

using namespace tetris::frontend;

/**
 * An 8-qubit Pauli-list program built to stress chunk boundaries:
 * dyadic single-Z cascades repeating the same control axis block
 * after block, commuting multi-string (UCC-flavored) blocks, an
 * all-qubit X mixing layer, and two blocks whose strings
 * anticommute (in-block rotation order is load-bearing there).
 */
std::string
corpusText()
{
    std::ostringstream out;
    auto single = [](int q, char op) {
        std::string s(8, 'I');
        s[static_cast<size_t>(q)] = op;
        return s;
    };
    // Sweep: repeated Z on a fixed control plus a moving target.
    for (int dist = 1; dist <= 6; ++dist) {
        out << "block " << (3.14159265358979 / (1 << (dist % 4)))
            << "\n";
        out << single(2, 'Z') << " -1.0\n";
        out << single((2 + dist) % 8, 'Z') << " -1.0\n";
        std::string zz(8, 'I');
        zz[2] = 'Z';
        zz[static_cast<size_t>((2 + dist) % 8)] = 'Z';
        out << zz << " 1.0\n";
    }
    // Commuting two-string blocks.
    out << "block 0.3\nXXIIIIII\nYYIIIIII\n";
    out << "block 0.45\nIIZZIIII\nIIIIZZII\n";
    // Non-commuting blocks: Z then X on the same wire.
    out << "block 0.7\n" << single(0, 'Z') << "\n" << single(0, 'X')
        << "\n";
    out << "block 0.25\n" << single(5, 'X') << "\n" << single(5, 'Y')
        << "\n";
    // Mixing layer.
    out << "block 0.9\n";
    for (int q = 0; q < 8; ++q)
        out << single(q, 'X') << "\n";
    // Tail sweep so the last chunk is not the mixing layer.
    for (int dist = 1; dist <= 4; ++dist) {
        out << "block " << (0.1 * dist) << "\n";
        out << single(6, 'Z') << "\n";
    }
    return out.str();
}

std::vector<PauliBlock>
parseAll(const std::string &text)
{
    std::istringstream in(text);
    PauliListParser parser(in);
    std::vector<PauliBlock> blocks;
    PauliBlock b;
    BlockSource::Status s;
    while ((s = parser.next(b)) == BlockSource::Status::Block)
        blocks.push_back(std::move(b));
    EXPECT_EQ(s, BlockSource::Status::End)
        << parser.error().toText();
    return blocks;
}

fs::path
tempPath(const std::string &name)
{
    return fs::temp_directory_path() /
           ("tetris_test_stream_" + std::to_string(::getpid()) + "_" +
            name);
}

class StreamDifferentialTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        EngineOptions opts;
        opts.numThreads = 2;
        opts.verify = true;
        engine_ = std::make_unique<Engine>(opts);
        hw_ = std::make_shared<const CouplingGraph>(gridTopology(2, 4));
    }

    std::unique_ptr<Engine> engine_;
    std::shared_ptr<const CouplingGraph> hw_;
};

TEST_F(StreamDifferentialTest, WindowsAgreeWithWholeProgram)
{
    const std::string text = corpusText();
    const std::vector<PauliBlock> whole = parseAll(text);
    ASSERT_GE(whole.size(), 15u);

    // 1 << 20 = "wider than the program": the whole program is one
    // chunk, which doubles as the unchunked baseline.
    for (int window : {1, 3, 7, 1 << 20}) {
        SCOPED_TRACE("window=" + std::to_string(window));
        const fs::path tcs =
            tempPath("w" + std::to_string(window) + ".tcs");

        std::istringstream in(text);
        PauliListParser src(in);
        StreamOptions opts;
        opts.window = window;
        opts.name = "diff";
        opts.outputPath = tcs.string();
        StreamCompiler sc(*engine_, hw_, opts);
        StreamStats st = sc.run(src);

        ASSERT_TRUE(st.ok) << st.failure << " " << st.parseError.toText();
        EXPECT_EQ(st.verifyFailures, 0u);
        EXPECT_EQ(st.blocks, whole.size());
        const size_t expect_chunks =
            (whole.size() + static_cast<size_t>(window) - 1) /
            static_cast<size_t>(window);
        EXPECT_EQ(st.chunks, expect_chunks);

        // Read the streamed artifacts back; chain and concatenate.
        serialize::StreamArtifactReader reader(tcs.string());
        CompileResult combined;
        combined.circuit = Circuit(hw_->numQubits());
        std::vector<int> prev_final;
        size_t block_offset = 0;
        size_t records = 0;
        uint64_t key = 0;
        CompileResult chunk;
        serialize::StreamArtifactReader::Status rs;
        while ((rs = reader.next(key, chunk)) ==
               serialize::StreamArtifactReader::Status::Record) {
            EXPECT_EQ(key, st.chunkKeys.at(records));
            // Layout chaining: chunk N+1 assumes exactly the wire
            // state chunk N left behind.
            if (records > 0)
                EXPECT_EQ(chunk.initialLayout.toPhysical(), prev_final);
            prev_final = chunk.finalLayout.toPhysical();
            combined.circuit.append(chunk.circuit);
            for (size_t idx : chunk.blockOrder)
                combined.blockOrder.push_back(block_offset + idx);
            block_offset += chunk.blockOrder.size();
            combined.finalLayout = chunk.finalLayout;
            ++records;
        }
        EXPECT_EQ(rs, serialize::StreamArtifactReader::Status::End);
        ASSERT_EQ(records, st.chunks);
        ASSERT_EQ(block_offset, whole.size());

        // The semantic differential: the concatenation of all chunk
        // circuits must implement the whole program, per both the
        // exact simulator and the scalable conjugation checker.
        VerifyOptions vo;
        VerifyReport conj = verifyConjugation(whole, combined, vo);
        EXPECT_EQ(conj.status, VerifyStatus::Pass) << conj.detail;
        VerifyReport exact = verifyExact(whole, combined, vo);
        EXPECT_EQ(exact.status, VerifyStatus::Pass) << exact.detail;

        fs::remove(tcs);
    }
}

TEST_F(StreamDifferentialTest, GeneratedWorkloadsStreamAndVerify)
{
    // The bench generators, small: every chunk must verify and the
    // layouts must chain for machine-generated programs too.
    struct Case
    {
        const char *kind;
        int qubits;
    };
    for (const Case &c : {Case{"shor", 8}, Case{"chem", 8}}) {
        SCOPED_TRACE(c.kind);
        WorkloadSpec ws;
        ws.numQubits = c.qubits;
        ws.minInstructions = 400;
        ws.seed = 7;
        std::ostringstream gen;
        if (std::string(c.kind) == "shor")
            genShorModExp(gen, ws);
        else
            genTrotterChem(gen, ws);

        std::istringstream in(gen.str());
        PauliListParser src(in);
        StreamOptions opts;
        opts.window = 5;
        opts.name = c.kind;
        StreamCompiler sc(*engine_, hw_, opts);
        StreamStats st = sc.run(src);
        ASSERT_TRUE(st.ok) << st.failure;
        EXPECT_EQ(st.verifyFailures, 0u);
        EXPECT_GE(st.instructions, 400u);
        EXPECT_GT(st.chunks, 1u);
    }
}

TEST_F(StreamDifferentialTest, QasmProgramStreams)
{
    WorkloadSpec ws;
    ws.numQubits = 8;
    ws.minInstructions = 300;
    ws.seed = 11;
    std::ostringstream gen;
    genGrover3Sat(gen, ws);

    std::istringstream in(gen.str());
    QasmParser src(in);
    StreamOptions opts;
    opts.window = 4;
    opts.name = "grover";
    StreamCompiler sc(*engine_, hw_, opts);
    StreamStats st = sc.run(src);
    ASSERT_TRUE(st.ok) << st.failure << " " << st.parseError.toText();
    EXPECT_EQ(st.verifyFailures, 0u);
    EXPECT_EQ(st.numQubits, 8);
    EXPECT_GT(st.chunks, 1u);
}

TEST_F(StreamDifferentialTest, EmptyProgramIsZeroChunks)
{
    std::istringstream in("# nothing but comments\n\n");
    PauliListParser src(in);
    StreamOptions opts;
    opts.window = 4;
    StreamCompiler sc(*engine_, hw_, opts);
    StreamStats st = sc.run(src);
    EXPECT_TRUE(st.ok) << st.failure;
    EXPECT_EQ(st.chunks, 0u);
    EXPECT_EQ(st.blocks, 0u);
}

TEST_F(StreamDifferentialTest, MidStreamParseErrorIsTypedAndPositioned)
{
    // Blocks 1-2 are fine; the garbage arrives in block 3, after the
    // first window already compiled — the error must still surface.
    std::istringstream in("block 0.5\nZIIIIIII\n"
                          "block 0.25\nXIIIIIII\n"
                          "block 0.125\nZQIIIIII\n");
    PauliListParser src(in);
    StreamOptions opts;
    opts.window = 1;
    StreamCompiler sc(*engine_, hw_, opts);
    StreamStats st = sc.run(src);
    EXPECT_FALSE(st.ok);
    EXPECT_EQ(st.parseError.kind, ParseErrorKind::Lex);
    EXPECT_EQ(st.parseError.line, 6u);
    EXPECT_EQ(st.parseError.column, 2u);
}

TEST_F(StreamDifferentialTest, ProgramWiderThanDeviceFails)
{
    std::string wide(16, 'Z');
    std::istringstream in("block 0.5\n" + wide + "\n");
    PauliListParser src(in);
    StreamOptions opts;
    opts.window = 4;
    StreamCompiler sc(*engine_, hw_, opts);
    StreamStats st = sc.run(src);
    EXPECT_FALSE(st.ok);
    EXPECT_NE(st.failure.find("16 qubits"), std::string::npos)
        << st.failure;
}

TEST(StreamFileTest, TruncatedTailIsAReadablePrefix)
{
    // Compile two chunks to a .tcs, then truncate at every byte
    // length: the reader must return complete leading records and
    // then End/Corrupt — never crash, never a partial record.
    EngineOptions eopts;
    eopts.numThreads = 1;
    Engine engine(eopts);
    auto hw = std::make_shared<const CouplingGraph>(gridTopology(2, 2));

    std::istringstream in("block 0.5\nZIII\nblock 0.25\nXIII\n");
    PauliListParser src(in);
    const fs::path tcs = tempPath("trunc.tcs");
    StreamOptions opts;
    opts.window = 1;
    opts.outputPath = tcs.string();
    StreamCompiler sc(engine, hw, opts);
    StreamStats st = sc.run(src);
    ASSERT_TRUE(st.ok) << st.failure;
    ASSERT_EQ(st.chunks, 2u);

    std::ifstream full(tcs, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(full)),
                      std::istreambuf_iterator<char>());
    full.close();

    const fs::path cut = tempPath("cut.tcs");
    size_t prev_records = 0;
    for (size_t len = 0; len <= bytes.size(); ++len) {
        {
            std::ofstream out(cut, std::ios::binary | std::ios::trunc);
            out.write(bytes.data(), static_cast<std::streamsize>(len));
        }
        serialize::StreamArtifactReader reader(cut.string());
        uint64_t key = 0;
        CompileResult res;
        size_t records = 0;
        serialize::StreamArtifactReader::Status rs;
        while ((rs = reader.next(key, res)) ==
               serialize::StreamArtifactReader::Status::Record)
            ++records;
        EXPECT_LE(records, 2u);
        // Longer prefixes never lose records.
        EXPECT_GE(records, prev_records == 2 ? 2u : 0u);
        if (len == bytes.size()) {
            EXPECT_EQ(records, 2u);
            EXPECT_EQ(rs,
                      serialize::StreamArtifactReader::Status::End);
        }
        prev_records = records;
    }
    fs::remove(tcs);
    fs::remove(cut);
}

TEST(StreamWindowTest, ResolutionOrder)
{
    // Explicit request beats everything; otherwise the env; else 256.
    EXPECT_EQ(resolveStreamWindow(17), 17);
    ::unsetenv("TETRIS_STREAM_WINDOW");
    EXPECT_EQ(resolveStreamWindow(0), 256);
    ::setenv("TETRIS_STREAM_WINDOW", "64", 1);
    EXPECT_EQ(resolveStreamWindow(0), 64);
    EXPECT_EQ(resolveStreamWindow(3), 3);
    ::unsetenv("TETRIS_STREAM_WINDOW");
}

} // namespace
} // namespace tetris
