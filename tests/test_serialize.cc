/**
 * @file
 * Serialization-layer tests: binary primitive round-trips and
 * overrun behavior, circuit/stats/layout component round-trips
 * (empty, parameterized, 1000-gate stress), full compile-artifact
 * round-trips against a real compilation, and the decode-rejection
 * matrix — truncation, bit flips, version skew, wrong key, foreign
 * bytes — that the disk cache relies on to treat corruption as a
 * plain miss. Plus the MappedFile zero-copy read path: mapping,
 * fallback-on-request (TETRIS_DISK_MMAP=0), empty/missing files,
 * move semantics, and decoding an artifact straight from the map.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>

#include "chem/uccsd.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "serialize/artifact.hh"
#include "serialize/binary.hh"
#include "serialize/mmap_file.hh"

namespace tetris
{
namespace
{

using serialize::BinaryReader;
using serialize::BinaryWriter;

/** Gate-by-gate equality (Gate has no operator==). */
void
expectSameCircuit(const Circuit &a, const Circuit &b)
{
    ASSERT_EQ(a.numQubits(), b.numQubits());
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        const Gate &ga = a.gates()[i];
        const Gate &gb = b.gates()[i];
        EXPECT_EQ(ga.kind, gb.kind) << "gate " << i;
        EXPECT_EQ(ga.q0, gb.q0) << "gate " << i;
        EXPECT_EQ(ga.q1, gb.q1) << "gate " << i;
        EXPECT_EQ(ga.angle, gb.angle) << "gate " << i;
    }
}

TEST(Binary, PrimitiveRoundTrip)
{
    BinaryWriter w;
    w.u8(0xab);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefull);
    w.i32(-42);
    w.f64(-1.5e-300);
    w.str("length-prefixed \0 string" + std::string(1, '\0'));
    w.str("");

    BinaryReader r(w.data());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.f64(), -1.5e-300);
    EXPECT_EQ(r.str(),
              "length-prefixed \0 string" + std::string(1, '\0'));
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(r.atEnd());
}

TEST(Binary, ReaderOverrunIsSticky)
{
    BinaryWriter w;
    w.u32(7);
    BinaryReader r(w.data());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_EQ(r.u64(), 0u); // overrun
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u); // still failed
    EXPECT_FALSE(r.ok());
}

TEST(Binary, BogusStringLengthFails)
{
    BinaryWriter w;
    w.u64(uint64_t{1} << 40); // length prefix far past the buffer
    BinaryReader r(w.data());
    EXPECT_EQ(r.str(), "");
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, EmptyCircuitRoundTrip)
{
    Circuit empty;
    BinaryWriter w;
    serialize::write(w, empty);
    BinaryReader r(w.data());
    Circuit decoded(99);
    ASSERT_TRUE(serialize::read(r, decoded));
    EXPECT_TRUE(r.atEnd());
    expectSameCircuit(empty, decoded);
}

TEST(Serialize, ParameterizedGatesRoundTrip)
{
    Circuit c(5);
    c.h(0);
    c.rz(1, 0.123456789012345678);
    c.rx(2, -3.14159265358979);
    c.cx(0, 4);
    c.swap(3, 1);
    c.sdg(2);
    c.measure(4);
    c.reset(0);

    BinaryWriter w;
    serialize::write(w, c);
    BinaryReader r(w.data());
    Circuit decoded;
    ASSERT_TRUE(serialize::read(r, decoded));
    expectSameCircuit(c, decoded);
}

TEST(Serialize, ThousandGateStressRoundTrip)
{
    Circuit c(16);
    for (int i = 0; i < 1000; ++i) {
        switch (i % 4) {
          case 0: c.rz(i % 16, 0.001 * i); break;
          case 1: c.cx(i % 16, (i + 7) % 16); break;
          case 2: c.h(i % 16); break;
          default: c.swap(i % 16, (i + 3) % 16); break;
        }
    }
    ASSERT_EQ(c.size(), 1000u);

    BinaryWriter w;
    serialize::write(w, c);
    BinaryReader r(w.data());
    Circuit decoded;
    ASSERT_TRUE(serialize::read(r, decoded));
    expectSameCircuit(c, decoded);
    EXPECT_EQ(c.depth(), decoded.depth());
    EXPECT_EQ(c.cnotCount(), decoded.cnotCount());
}

TEST(Serialize, CircuitRejectsOutOfRangeQubits)
{
    BinaryWriter w;
    w.i32(2);   // numQubits
    w.u64(1);   // one gate
    w.u8(static_cast<uint8_t>(GateKind::CX));
    w.i32(0);
    w.i32(5);   // target out of range
    w.f64(0.0);
    BinaryReader r(w.data());
    Circuit decoded;
    EXPECT_FALSE(serialize::read(r, decoded));
    EXPECT_FALSE(r.ok());
}

TEST(Serialize, CircuitRejectsUnknownGateKind)
{
    BinaryWriter w;
    w.i32(2);
    w.u64(1);
    w.u8(200); // no such GateKind
    w.i32(0);
    w.i32(-1);
    w.f64(0.0);
    BinaryReader r(w.data());
    Circuit decoded;
    EXPECT_FALSE(serialize::read(r, decoded));
}

TEST(Serialize, StatsRoundTrip)
{
    CompileStats s;
    s.cnotCount = 123;
    s.oneQubitCount = 456;
    s.totalGateCount = 579;
    s.depth = 42;
    s.durationDt = 1234.5;
    s.swapCount = 7;
    s.swapCnots = 21;
    s.logicalCnots = 102;
    s.originalCnots = 200;
    s.cancelRatio = 0.49;
    s.compileSeconds = 0.125;
    s.scheduleSeconds = 0.01;
    s.synthSeconds = 0.1;
    s.peepholeSeconds = 0.015;
    s.synthesis.insertedSwaps = 7;
    s.synthesis.emittedCx = 102;
    s.synthesis.bridgeNodes = 3;
    s.synthesis.blocksWithCancellation = 9;
    s.synthesis.blocksFallback = 1;

    BinaryWriter w;
    serialize::write(w, s);
    BinaryReader r(w.data());
    CompileStats d;
    ASSERT_TRUE(serialize::read(r, d));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(d.cnotCount, s.cnotCount);
    EXPECT_EQ(d.oneQubitCount, s.oneQubitCount);
    EXPECT_EQ(d.totalGateCount, s.totalGateCount);
    EXPECT_EQ(d.depth, s.depth);
    EXPECT_EQ(d.durationDt, s.durationDt);
    EXPECT_EQ(d.swapCount, s.swapCount);
    EXPECT_EQ(d.swapCnots, s.swapCnots);
    EXPECT_EQ(d.logicalCnots, s.logicalCnots);
    EXPECT_EQ(d.originalCnots, s.originalCnots);
    EXPECT_EQ(d.cancelRatio, s.cancelRatio);
    EXPECT_EQ(d.compileSeconds, s.compileSeconds);
    EXPECT_EQ(d.synthesis.insertedSwaps, s.synthesis.insertedSwaps);
    EXPECT_EQ(d.synthesis.blocksFallback, s.synthesis.blocksFallback);
}

TEST(Serialize, LayoutRoundTripWithFreeAndEvictedQubits)
{
    Layout layout(4, 8);
    layout.applySwap(1, 6);
    layout.evict(2); // slot 2 becomes free, logical 2 unplaced

    BinaryWriter w;
    serialize::write(w, layout);
    BinaryReader r(w.data());
    Layout decoded;
    ASSERT_TRUE(serialize::read(r, decoded));
    EXPECT_EQ(decoded, layout);
}

TEST(Serialize, LayoutRejectsNonInjectiveMapping)
{
    BinaryWriter w;
    w.i32(4);  // physical
    w.u64(2);  // logical
    w.i32(3);
    w.i32(3);  // two logical qubits on one physical slot
    BinaryReader r(w.data());
    Layout decoded;
    EXPECT_FALSE(serialize::read(r, decoded));
    EXPECT_FALSE(
        Layout::fromMapping(std::vector<int>{3, 3}, 4).has_value());
    EXPECT_FALSE(
        Layout::fromMapping(std::vector<int>{0, 9}, 4).has_value());
    EXPECT_TRUE(
        Layout::fromMapping(std::vector<int>{3, -1, 0}, 4).has_value());
}

TEST(Serialize, LayoutRejectsAbsurdPhysicalCount)
{
    // A crafted file must not drive a huge up-front allocation.
    BinaryWriter w;
    w.i32((1 << 24) + 1);
    w.u64(0);
    BinaryReader r(w.data());
    Layout decoded;
    EXPECT_FALSE(serialize::read(r, decoded));
}

/** A real compilation round-tripped through the artifact envelope. */
class ArtifactRoundTrip : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        CouplingGraph hw = heavyHexTopology(2, 5);
        blocks_ = buildSyntheticUcc(8, 33);
        result_ = compileTetris(blocks_, hw);
        key_ = 0x1122334455667788ull;
        image_ = serialize::encodeArtifact(key_, result_);
        ASSERT_FALSE(image_.empty());
    }

    std::vector<PauliBlock> blocks_;
    CompileResult result_;
    uint64_t key_ = 0;
    std::string image_;
};

TEST_F(ArtifactRoundTrip, DecodesBitIdentical)
{
    CompileResult decoded;
    ASSERT_TRUE(serialize::decodeArtifact(image_, key_, decoded));
    expectSameCircuit(result_.circuit, decoded.circuit);
    EXPECT_EQ(decoded.stats.cnotCount, result_.stats.cnotCount);
    EXPECT_EQ(decoded.stats.depth, result_.stats.depth);
    EXPECT_EQ(decoded.stats.durationDt, result_.stats.durationDt);
    EXPECT_EQ(decoded.stats.cancelRatio, result_.stats.cancelRatio);
    EXPECT_EQ(decoded.stats.compileSeconds,
              result_.stats.compileSeconds);
    EXPECT_EQ(decoded.finalLayout, result_.finalLayout);
    EXPECT_EQ(decoded.blockOrder, result_.blockOrder);
    EXPECT_FALSE(decoded.cancelled);
}

TEST_F(ArtifactRoundTrip, TruncationIsRejected)
{
    CompileResult decoded;
    // Every prefix must fail cleanly — headers, payload, checksum.
    for (size_t len : {size_t{0}, size_t{3}, size_t{8}, size_t{20},
                       image_.size() / 2, image_.size() - 1}) {
        EXPECT_FALSE(serialize::decodeArtifact(
            std::string_view(image_).substr(0, len), key_, decoded))
            << "prefix length " << len;
    }
}

TEST_F(ArtifactRoundTrip, TrailingGarbageIsRejected)
{
    CompileResult decoded;
    EXPECT_FALSE(
        serialize::decodeArtifact(image_ + "x", key_, decoded));
}

TEST_F(ArtifactRoundTrip, BitFlipsAreRejected)
{
    CompileResult decoded;
    // Flip one byte at a spread of offsets: header, payload, and
    // checksum corruption must all read as a miss.
    for (size_t pos = 0; pos < image_.size();
         pos += 1 + image_.size() / 23) {
        std::string bad = image_;
        bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
        EXPECT_FALSE(serialize::decodeArtifact(bad, key_, decoded))
            << "flip at offset " << pos;
    }
}

TEST_F(ArtifactRoundTrip, VersionMismatchIsRejected)
{
    // The version field sits right after the 4-byte magic.
    std::string skewed = image_;
    skewed[4] = static_cast<char>(serialize::kArtifactVersion + 1);
    CompileResult decoded;
    EXPECT_FALSE(serialize::decodeArtifact(skewed, key_, decoded));
}

TEST_F(ArtifactRoundTrip, WrongKeyIsRejected)
{
    CompileResult decoded;
    EXPECT_FALSE(serialize::decodeArtifact(image_, key_ + 1, decoded));
}

TEST_F(ArtifactRoundTrip, ForeignBytesAreRejected)
{
    CompileResult decoded;
    EXPECT_FALSE(serialize::decodeArtifact("not an artifact at all",
                                           key_, decoded));
    EXPECT_FALSE(serialize::decodeArtifact(std::string(1024, '\0'),
                                           key_, decoded));
}

TEST(Serialize, CancelledResultRoundTrips)
{
    CompileResult cancelled;
    cancelled.cancelled = true;
    std::string image = serialize::encodeArtifact(1, cancelled);
    CompileResult decoded;
    ASSERT_TRUE(serialize::decodeArtifact(image, 1, decoded));
    EXPECT_TRUE(decoded.cancelled);
    EXPECT_TRUE(decoded.circuit.empty());
}

/** Scratch file helpers for the MappedFile tests. */
class MappedFileTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::path(::testing::TempDir()) /
               ("tetris_mmap_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::remove_all(dir_);
        std::filesystem::create_directories(dir_);
        ::unsetenv("TETRIS_DISK_MMAP");
    }

    void
    TearDown() override
    {
        ::unsetenv("TETRIS_DISK_MMAP");
        std::filesystem::remove_all(dir_);
    }

    std::string
    writeFile(const char *name, const std::string &content)
    {
        std::filesystem::path p = dir_ / name;
        std::ofstream(p, std::ios::binary) << content;
        return p.string();
    }

    std::filesystem::path dir_;
};

TEST_F(MappedFileTest, MapsFileBytesZeroCopy)
{
    const std::string content = "hello mapped \0 bytes" +
                                std::string(1, '\0') + "tail";
    std::string path = writeFile("plain.bin", content);

    serialize::MappedFile f = serialize::MappedFile::open(path);
    ASSERT_TRUE(f.valid());
    EXPECT_EQ(f.span(), serialize::ByteSpan(content));
    // On POSIX builds (the only place tests run) the default path is
    // the real mapping, not the fallback buffer.
    EXPECT_EQ(f.isMapped(), serialize::MappedFile::mmapEnabled());
}

TEST_F(MappedFileTest, MissingFileIsInvalid)
{
    serialize::MappedFile f =
        serialize::MappedFile::open((dir_ / "nope.bin").string());
    EXPECT_FALSE(f.valid());
    EXPECT_TRUE(f.span().empty());
}

TEST_F(MappedFileTest, EmptyFileIsValidAndEmpty)
{
    std::string path = writeFile("empty.bin", "");
    serialize::MappedFile f = serialize::MappedFile::open(path);
    EXPECT_TRUE(f.valid());
    EXPECT_TRUE(f.span().empty());
    EXPECT_FALSE(f.isMapped()); // nothing to map
}

TEST_F(MappedFileTest, EnvDisablesMappingButNotReading)
{
    std::string path = writeFile("fallback.bin", "buffered bytes");
    ::setenv("TETRIS_DISK_MMAP", "0", 1);
    EXPECT_FALSE(serialize::MappedFile::mmapEnabled());
    serialize::MappedFile f = serialize::MappedFile::open(path);
    ASSERT_TRUE(f.valid());
    EXPECT_FALSE(f.isMapped());
    EXPECT_EQ(f.span(), serialize::ByteSpan("buffered bytes"));
}

TEST_F(MappedFileTest, MoveTransfersOwnership)
{
    std::string path = writeFile("move.bin", "movable");
    serialize::MappedFile a = serialize::MappedFile::open(path);
    ASSERT_TRUE(a.valid());
    serialize::MappedFile b = std::move(a);
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(b.span(), serialize::ByteSpan("movable"));
    EXPECT_FALSE(a.valid()); // NOLINT: inspecting moved-from state
    EXPECT_TRUE(a.span().empty());
}

TEST_F(MappedFileTest, ArtifactDecodesStraightFromMapping)
{
    // The end-to-end zero-copy contract: encode an artifact, map the
    // file, decode from the mapped span with no intermediate string.
    CompileResult result =
        compileTetris(buildSyntheticUcc(6, 5), lineTopology(8));
    const uint64_t key = 0xabcdef;
    std::string path =
        writeFile("artifact.tca", serialize::encodeArtifact(key, result));

    serialize::MappedFile f = serialize::MappedFile::open(path);
    ASSERT_TRUE(f.valid());
    CompileResult decoded;
    ASSERT_TRUE(serialize::decodeArtifact(f.span(), key, decoded));
    expectSameCircuit(result.circuit, decoded.circuit);

    // A truncated mapped artifact must decode as a clean failure.
    std::string truncated =
        serialize::encodeArtifact(key, result).substr(0, 40);
    std::string bad_path = writeFile("truncated.tca", truncated);
    serialize::MappedFile g = serialize::MappedFile::open(bad_path);
    ASSERT_TRUE(g.valid());
    CompileResult ignored;
    EXPECT_FALSE(serialize::decodeArtifact(g.span(), key, ignored));
}

} // namespace
} // namespace tetris
