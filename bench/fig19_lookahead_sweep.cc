/**
 * @file
 * Regenerates Fig. 19: sensitivity of Tetris to the scheduler
 * lookahead size K (1..22): total CNOT count and depth per
 * molecule on the heavy-hex backend. The whole K sweep compiles
 * in parallel through the batch engine.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 19: lookahead size K sweep (JW, heavy-hex)",
                "Paper: CNOT count drops sharply from K=1 and is "
                "stable for K > 10.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    const std::vector<int> ks = {1, 4, 7, 10, 13, 16, 19, 22};

    auto mols = benchMolecules();
    std::vector<CompileJob> jobs;
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        for (int k : ks) {
            TetrisOptions opts;
            opts.lookaheadK = k;
            jobs.push_back(makeJob(spec.name + "/k" + std::to_string(k),
                                   blocks, hw,
                                   makeTetrisPipeline(opts)));
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    std::vector<std::string> headers{"Bench", "Metric"};
    for (int k : ks)
        headers.push_back("K=" + std::to_string(k));
    TablePrinter table(headers);

    for (size_t i = 0; i < mols.size(); ++i) {
        std::vector<std::string> cnot_row{mols[i].name, "CNOT"};
        std::vector<std::string> depth_row{mols[i].name, "Depth"};
        for (size_t j = 0; j < ks.size(); ++j) {
            const CompileStats &s =
                records[i * ks.size() + j].second->stats;
            cnot_row.push_back(formatCount(s.cnotCount));
            depth_row.push_back(formatCount(s.depth));
        }
        table.addRow(cnot_row);
        table.addRow(depth_row);
    }
    table.print();
    writeBenchJson("fig19", records, engine);
    return 0;
}
