/**
 * @file
 * Regenerates Fig. 19: sensitivity of Tetris to the scheduler
 * lookahead size K (1..22): total CNOT count and depth per
 * molecule on the heavy-hex backend.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 19: lookahead size K sweep (JW, heavy-hex)",
                "Paper: CNOT count drops sharply from K=1 and is "
                "stable for K > 10.");

    CouplingGraph hw = ibmIthaca65();
    const std::vector<int> ks = {1, 4, 7, 10, 13, 16, 19, 22};

    std::vector<std::string> headers{"Bench", "Metric"};
    for (int k : ks)
        headers.push_back("K=" + std::to_string(k));
    TablePrinter table(headers);

    for (const auto &spec : benchMolecules()) {
        auto blocks = buildMolecule(spec, "jw");
        std::vector<std::string> cnot_row{spec.name, "CNOT"};
        std::vector<std::string> depth_row{spec.name, "Depth"};
        for (int k : ks) {
            TetrisOptions opts;
            opts.lookaheadK = k;
            CompileResult res = compileTetris(blocks, hw, opts);
            cnot_row.push_back(formatCount(res.stats.cnotCount));
            depth_row.push_back(formatCount(res.stats.depth));
        }
        table.addRow(cnot_row);
        table.addRow(depth_row);
    }
    table.print();
    return 0;
}
