/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels:
 * Pauli algebra, UCCSD generation, peephole optimization, routing,
 * and full compilation of a mid-size molecule. These are not paper
 * artifacts; they track the cost of the primitives the paper's
 * experiments are built from.
 */

#include <benchmark/benchmark.h>

#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "pauli/pauli_ref.hh"
#include "router/router.hh"
#include "verify/pauli_frame.hh"

namespace
{

using namespace tetris;

void
BM_PauliStringMul(benchmark::State &state)
{
    PauliString a = PauliString::fromText("XXYZIXZYIZXYZIXZ");
    PauliString b = PauliString::fromText("ZIXYZXIYZXYZIXZY");
    for (auto _ : state) {
        auto r = mulStrings(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PauliStringMul);

// ---- packed bit-plane kernels vs the byte-per-qubit reference ------
// Same random inputs on both sides; state.range(0) is the qubit
// count, spanning one word (16, 64) and multi-word (256) strings.

pauli_ref::ByteString
randomByteString(Rng &rng, size_t n)
{
    static constexpr PauliOp kOps[4] = {PauliOp::I, PauliOp::X,
                                        PauliOp::Y, PauliOp::Z};
    pauli_ref::ByteString s(n);
    for (size_t q = 0; q < n; ++q)
        s[q] = kOps[rng.uniformInt(0, 3)];
    return s;
}

void
BM_PauliCommutePacked(benchmark::State &state)
{
    Rng rng(11);
    const size_t n = static_cast<size_t>(state.range(0));
    PauliString a(randomByteString(rng, n));
    PauliString b(randomByteString(rng, n));
    for (auto _ : state)
        benchmark::DoNotOptimize(a.commutesWith(b));
}
BENCHMARK(BM_PauliCommutePacked)->Arg(16)->Arg(64)->Arg(256);

void
BM_PauliCommuteByte(benchmark::State &state)
{
    Rng rng(11);
    const size_t n = static_cast<size_t>(state.range(0));
    pauli_ref::ByteString a = randomByteString(rng, n);
    pauli_ref::ByteString b = randomByteString(rng, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(pauli_ref::commutes(a, b));
}
BENCHMARK(BM_PauliCommuteByte)->Arg(16)->Arg(64)->Arg(256);

void
BM_PauliProductPacked(benchmark::State &state)
{
    Rng rng(13);
    const size_t n = static_cast<size_t>(state.range(0));
    PauliString a(randomByteString(rng, n));
    PauliString acc(randomByteString(rng, n));
    for (auto _ : state)
        benchmark::DoNotOptimize(acc.mulLeft(a));
}
BENCHMARK(BM_PauliProductPacked)->Arg(16)->Arg(64)->Arg(256);

void
BM_PauliProductByte(benchmark::State &state)
{
    Rng rng(13);
    const size_t n = static_cast<size_t>(state.range(0));
    pauli_ref::ByteString a = randomByteString(rng, n);
    pauli_ref::ByteString acc = randomByteString(rng, n);
    for (auto _ : state)
        benchmark::DoNotOptimize(pauli_ref::mulInto(a, acc));
}
BENCHMARK(BM_PauliProductByte)->Arg(16)->Arg(64)->Arg(256);

std::vector<Gate>
randomCliffords(Rng &rng, int qubits, int count)
{
    std::vector<Gate> gates;
    gates.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int q0 = rng.uniformInt(0, qubits - 1);
        switch (rng.uniformInt(0, 2)) {
          case 0:
            gates.push_back(Gate::h(q0));
            break;
          case 1:
            gates.push_back(Gate::s(q0));
            break;
          default: {
            int q1 = rng.uniformInt(0, qubits - 1);
            if (q1 == q0)
                q1 = (q1 + 1) % qubits;
            gates.push_back(Gate::cx(q0, q1));
            break;
          }
        }
    }
    return gates;
}

void
BM_TableauConjugatePacked(benchmark::State &state)
{
    Rng rng(17);
    const int n = static_cast<int>(state.range(0));
    auto gates = randomCliffords(rng, n, 256);
    PauliFrame frame(n);
    for (auto _ : state) {
        for (const Gate &g : gates)
            benchmark::DoNotOptimize(frame.applyGate(g));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(gates.size()));
}
BENCHMARK(BM_TableauConjugatePacked)->Arg(16)->Arg(64)->Arg(256);

void
BM_TableauConjugateByte(benchmark::State &state)
{
    Rng rng(17);
    const int n = static_cast<int>(state.range(0));
    auto gates = randomCliffords(rng, n, 256);
    pauli_ref::ByteFrame frame(n);
    for (auto _ : state) {
        for (const Gate &g : gates) {
            if (g.kind == GateKind::H)
                frame.applyH(g.q0);
            else if (g.kind == GateKind::S)
                frame.applyS(g.q0);
            else
                frame.applyCx(g.q0, g.q1);
        }
        benchmark::DoNotOptimize(frame.xSign.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(gates.size()));
}
BENCHMARK(BM_TableauConjugateByte)->Arg(16)->Arg(64)->Arg(256);

void
BM_DoubleExcitationJw(benchmark::State &state)
{
    JordanWignerEncoding enc(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto b = makeDoubleExcitation(enc, 0, 3, enc.numModes() - 4,
                                      enc.numModes() - 1, 0.3);
        benchmark::DoNotOptimize(b);
    }
}
BENCHMARK(BM_DoubleExcitationJw)->Arg(12)->Arg(20)->Arg(30);

void
BM_UccsdBuild(benchmark::State &state)
{
    const MoleculeSpec &spec = moleculeBenchmarks()[0]; // LiH
    for (auto _ : state) {
        auto blocks = buildMolecule(spec, "jw");
        benchmark::DoNotOptimize(blocks);
    }
}
BENCHMARK(BM_UccsdBuild);

void
BM_Peephole(benchmark::State &state)
{
    Rng rng(7);
    Circuit c(16);
    for (int i = 0; i < 4000; ++i) {
        int a = rng.uniformInt(0, 15);
        int b = rng.uniformInt(0, 15);
        if (a == b)
            b = (b + 1) % 16;
        if (rng.bernoulli(0.5))
            c.cx(a, b);
        else
            c.h(a);
    }
    for (auto _ : state) {
        Circuit r = peepholeOptimize(c);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Peephole);

void
BM_RouteGreedy(benchmark::State &state)
{
    Rng rng(9);
    Circuit c(20);
    for (int i = 0; i < 1000; ++i) {
        int a = rng.uniformInt(0, 19);
        int b = rng.uniformInt(0, 19);
        if (a == b)
            b = (b + 1) % 20;
        c.cx(a, b);
    }
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = routeCircuit(c, hw, RouterKind::Greedy);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RouteGreedy);

void
BM_CompileTetrisLiH(benchmark::State &state)
{
    auto blocks = buildMolecule(moleculeBenchmarks()[0], "jw");
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = compileTetris(blocks, hw);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CompileTetrisLiH);

void
BM_CompilePaulihedralLiH(benchmark::State &state)
{
    auto blocks = buildMolecule(moleculeBenchmarks()[0], "jw");
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = compilePaulihedral(blocks, hw);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CompilePaulihedralLiH);

} // namespace

BENCHMARK_MAIN();
