/**
 * @file
 * google-benchmark microbenchmarks for the library's hot kernels:
 * Pauli algebra, UCCSD generation, peephole optimization, routing,
 * and full compilation of a mid-size molecule. These are not paper
 * artifacts; they track the cost of the primitives the paper's
 * experiments are built from.
 */

#include <benchmark/benchmark.h>

#include "baselines/paulihedral.hh"
#include "chem/uccsd.hh"
#include "circuit/peephole.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "router/router.hh"

namespace
{

using namespace tetris;

void
BM_PauliStringMul(benchmark::State &state)
{
    PauliString a = PauliString::fromText("XXYZIXZYIZXYZIXZ");
    PauliString b = PauliString::fromText("ZIXYZXIYZXYZIXZY");
    for (auto _ : state) {
        auto r = mulStrings(a, b);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PauliStringMul);

void
BM_DoubleExcitationJw(benchmark::State &state)
{
    JordanWignerEncoding enc(static_cast<int>(state.range(0)));
    for (auto _ : state) {
        auto b = makeDoubleExcitation(enc, 0, 3, enc.numModes() - 4,
                                      enc.numModes() - 1, 0.3);
        benchmark::DoNotOptimize(b);
    }
}
BENCHMARK(BM_DoubleExcitationJw)->Arg(12)->Arg(20)->Arg(30);

void
BM_UccsdBuild(benchmark::State &state)
{
    const MoleculeSpec &spec = moleculeBenchmarks()[0]; // LiH
    for (auto _ : state) {
        auto blocks = buildMolecule(spec, "jw");
        benchmark::DoNotOptimize(blocks);
    }
}
BENCHMARK(BM_UccsdBuild);

void
BM_Peephole(benchmark::State &state)
{
    Rng rng(7);
    Circuit c(16);
    for (int i = 0; i < 4000; ++i) {
        int a = rng.uniformInt(0, 15);
        int b = rng.uniformInt(0, 15);
        if (a == b)
            b = (b + 1) % 16;
        if (rng.bernoulli(0.5))
            c.cx(a, b);
        else
            c.h(a);
    }
    for (auto _ : state) {
        Circuit r = peepholeOptimize(c);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_Peephole);

void
BM_RouteGreedy(benchmark::State &state)
{
    Rng rng(9);
    Circuit c(20);
    for (int i = 0; i < 1000; ++i) {
        int a = rng.uniformInt(0, 19);
        int b = rng.uniformInt(0, 19);
        if (a == b)
            b = (b + 1) % 20;
        c.cx(a, b);
    }
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = routeCircuit(c, hw, RouterKind::Greedy);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_RouteGreedy);

void
BM_CompileTetrisLiH(benchmark::State &state)
{
    auto blocks = buildMolecule(moleculeBenchmarks()[0], "jw");
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = compileTetris(blocks, hw);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CompileTetrisLiH);

void
BM_CompilePaulihedralLiH(benchmark::State &state)
{
    auto blocks = buildMolecule(moleculeBenchmarks()[0], "jw");
    CouplingGraph hw = ibmIthaca65();
    for (auto _ : state) {
        auto r = compilePaulihedral(blocks, hw);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_CompilePaulihedralLiH);

} // namespace

BENCHMARK_MAIN();
