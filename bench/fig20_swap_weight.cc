/**
 * @file
 * Regenerates Fig. 20: the SWAP-weight w sweep. Larger w biases the
 * leaf scoring toward fewer SWAPs at the cost of logical CNOT
 * cancellation; Sycamore's denser connectivity keeps its SWAP count
 * low and stable across the sweep.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 20: SWAP weight w sweep (JW)",
                "Rows give inserted SWAP count and logical CNOTs on "
                "heavy-hex (Ithaca) and Sycamore.");

    const std::vector<double> ws = {0.1, 0.5, 1, 2, 3, 4, 5, 10, 100};
    std::vector<std::string> headers{"Bench", "Arch", "Metric"};
    for (double w : ws)
        headers.push_back("w=" + formatDouble(w, w < 1 ? 1 : 0));
    TablePrinter table(headers);

    std::vector<std::string> names = {"BeH2", "MgH2", "CO2"};
    if (quickMode())
        names = {"BeH2"};

    for (const auto &name : names) {
        auto blocks = buildMolecule(moleculeByName(name), "jw");
        for (const char *arch : {"ithaca", "sycamore"}) {
            CouplingGraph hw = arch == std::string("ithaca")
                                   ? ibmIthaca65()
                                   : googleSycamore64();
            std::vector<std::string> swaps{name, arch, "SWAPs"};
            std::vector<std::string> logical{name, arch, "LogicalCnots"};
            for (double w : ws) {
                TetrisOptions opts;
                opts.synthesis.swapWeight = w;
                CompileResult res = compileTetris(blocks, hw, opts);
                swaps.push_back(formatCount(res.stats.swapCount));
                logical.push_back(formatCount(res.stats.logicalCnots));
            }
            table.addRow(swaps);
            table.addRow(logical);
        }
    }
    table.print();
    return 0;
}
