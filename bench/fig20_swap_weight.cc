/**
 * @file
 * Regenerates Fig. 20: the SWAP-weight w sweep. Larger w biases the
 * leaf scoring toward fewer SWAPs at the cost of logical CNOT
 * cancellation; Sycamore's denser connectivity keeps its SWAP count
 * low and stable across the sweep. Both architectures' sweeps run as
 * one engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 20: SWAP weight w sweep (JW)",
                "Rows give inserted SWAP count and logical CNOTs on "
                "heavy-hex (Ithaca) and Sycamore.");

    Engine &engine = benchEngine();
    auto ithaca = shareDevice(ibmIthaca65());
    auto sycamore = shareDevice(googleSycamore64());

    const std::vector<double> ws = {0.1, 0.5, 1, 2, 3, 4, 5, 10, 100};
    std::vector<std::string> names = {"BeH2", "MgH2", "CO2"};
    if (quickMode())
        names = {"BeH2"};
    const std::vector<const char *> archs = {"ithaca", "sycamore"};

    std::vector<CompileJob> jobs;
    for (const auto &name : names) {
        auto blocks = buildMolecule(moleculeByName(name), "jw");
        for (const char *arch : archs) {
            auto hw = arch == std::string("ithaca") ? ithaca : sycamore;
            for (double w : ws) {
                TetrisOptions opts;
                opts.synthesis.swapWeight = w;
                jobs.push_back(makeJob(name + "/" + arch + "/w=" +
                                           formatDouble(w, 1),
                                       blocks, hw,
                                       makeTetrisPipeline(opts)));
            }
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    std::vector<std::string> headers{"Bench", "Arch", "Metric"};
    for (double w : ws)
        headers.push_back("w=" + formatDouble(w, w < 1 ? 1 : 0));
    TablePrinter table(headers);

    size_t next = 0;
    for (const auto &name : names) {
        for (const char *arch : archs) {
            std::vector<std::string> swaps{name, arch, "SWAPs"};
            std::vector<std::string> logical{name, arch, "LogicalCnots"};
            for (size_t j = 0; j < ws.size(); ++j) {
                const CompileStats &s = records[next++].second->stats;
                swaps.push_back(formatCount(s.swapCount));
                logical.push_back(formatCount(s.logicalCnots));
            }
            table.addRow(swaps);
            table.addRow(logical);
        }
    }
    table.print();
    writeBenchJson("fig20", records, engine);
    return 0;
}
