/**
 * @file
 * serve_stress: multi-client latency benchmark for tetrisd.
 *
 * Spins the real serve stack in-process (ServeServer on an ephemeral
 * TCP port over a verifying Engine), then hammers it with N client
 * threads x M submissions each, every request travelling the full
 * frame protocol + .tca artifact round-trip. Two phases:
 *
 *   cold  first pass; the distinct-program pool compiles once and
 *         every other submission dedups against it across clients
 *   warm  identical pass; the engine must serve 100% memory-cache
 *         hits and compile *nothing* (asserted, not just reported)
 *
 * Per-phase p50/p90/p99/max/avg client-observed latency, throughput,
 * and the engine's compile/dedup/verify counters land in
 * BENCH_serve.json (schema "serve-v1"; diff with
 * `scripts/bench_diff.py old new`).
 *
 *   serve_stress [--clients N] [--jobs M] [--programs P] [--qubits Q]
 *
 * Defaults: 8 clients x 50 jobs over 16 distinct 8-qubit programs
 * (TETRIS_BENCH_QUICK=1: 4 x 10 over 6). TETRIS_CACHE_DIR adds the
 * disk tier under the stress, TETRIS_VERIFY=0 disables the verifier.
 * Exit status 1 on any rejected request, transport error, verify
 * failure, or warm-phase recompile.
 */

#include <cstdio>
#include <cstdlib>

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hh"
#include "chem/uccsd.hh"
#include "common/json.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "serve/client.hh"
#include "serve/server.hh"

namespace
{

using namespace tetris;
using Clock = std::chrono::steady_clock;

struct PhaseStats
{
    std::vector<double> latencyMs; // one entry per completed request
    uint64_t ok = 0;
    uint64_t rejected = 0;
    uint64_t transportErrors = 0;
    uint64_t verifyFail = 0;
    double wallSeconds = 0.0;
    uint64_t compiles = 0;  // jobs.completed delta over the phase
    uint64_t diskHits = 0;  // jobs.disk_hits delta
    uint64_t deduped = 0;   // jobs.deduplicated delta
};

double
percentile(std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

double
average(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : v)
        sum += x;
    return sum / static_cast<double>(v.size());
}

/**
 * One full pass: `clients` threads, each on its own connection,
 * submitting `jobs` programs drawn round-robin from the shared pool.
 */
PhaseStats
runPhase(const Engine &engine, int port, int clients, int jobs,
         const std::vector<serve::SubmitRequest> &pool,
         const char *phase_name)
{
    PhaseStats stats;
    const uint64_t completed0 = engine.metrics().count("jobs.completed");
    const uint64_t disk0 = engine.metrics().count("jobs.disk_hits");
    const uint64_t dedup0 =
        engine.metrics().count("jobs.deduplicated");

    std::mutex merge_mutex;
    std::atomic<bool> connect_failed{false};
    const auto t0 = Clock::now();

    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            std::string err;
            auto client = serve::ServeClient::connectTcp(port, err);
            if (!client) {
                std::fprintf(stderr,
                             "serve_stress: client %d connect "
                             "failed: %s\n",
                             c, err.c_str());
                connect_failed.store(true);
                return;
            }
            PhaseStats local;
            for (int j = 0; j < jobs; ++j) {
                // Interleave the pool differently per client so the
                // cold phase sees genuine cross-client contention on
                // every program, not a lockstep parade.
                const size_t p = (static_cast<size_t>(c) * 7 +
                                  static_cast<size_t>(j)) %
                                 pool.size();
                serve::ServeClient::Response resp;
                const auto r0 = Clock::now();
                const bool sent = client->submit(pool[p], resp);
                const double ms =
                    std::chrono::duration<double, std::milli>(
                        Clock::now() - r0)
                        .count();
                if (!sent) {
                    local.transportErrors++;
                    break; // connection is dead; stop this client
                }
                if (!resp.ok) {
                    local.rejected++;
                    continue;
                }
                local.ok++;
                local.latencyMs.push_back(ms);
                if (resp.verify == serve::WireVerify::Fail)
                    local.verifyFail++;
            }
            std::lock_guard<std::mutex> lock(merge_mutex);
            stats.ok += local.ok;
            stats.rejected += local.rejected;
            stats.transportErrors += local.transportErrors;
            stats.verifyFail += local.verifyFail;
            stats.latencyMs.insert(stats.latencyMs.end(),
                                   local.latencyMs.begin(),
                                   local.latencyMs.end());
        });
    }
    for (auto &t : threads)
        t.join();

    stats.wallSeconds =
        std::chrono::duration<double>(Clock::now() - t0).count();
    if (connect_failed.load())
        stats.transportErrors++;
    stats.compiles =
        engine.metrics().count("jobs.completed") - completed0;
    stats.diskHits = engine.metrics().count("jobs.disk_hits") - disk0;
    stats.deduped =
        engine.metrics().count("jobs.deduplicated") - dedup0;

    std::sort(stats.latencyMs.begin(), stats.latencyMs.end());
    std::printf("%-5s %5llu ok  %3llu rejected  %3llu transport  "
                "p50 %.2fms  p99 %.2fms  %.2fs wall  "
                "%llu compiles  %llu dedup\n",
                phase_name,
                static_cast<unsigned long long>(stats.ok),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(
                    stats.transportErrors),
                percentile(stats.latencyMs, 0.50),
                percentile(stats.latencyMs, 0.99), stats.wallSeconds,
                static_cast<unsigned long long>(stats.compiles),
                static_cast<unsigned long long>(stats.deduped));
    return stats;
}

void
writePhaseJson(JsonWriter &w, PhaseStats &s)
{
    w.beginObject();
    w.key("requests").value(
        static_cast<uint64_t>(s.ok + s.rejected + s.transportErrors));
    w.key("ok").value(s.ok);
    w.key("rejected").value(s.rejected);
    w.key("transport_errors").value(s.transportErrors);
    w.key("verify_fail").value(s.verifyFail);
    w.key("wall_seconds").value(s.wallSeconds);
    w.key("throughput_rps")
        .value(s.wallSeconds > 0.0
                   ? static_cast<double>(s.ok) / s.wallSeconds
                   : 0.0);
    w.key("latency_ms").beginObject();
    w.key("p50").value(percentile(s.latencyMs, 0.50));
    w.key("p90").value(percentile(s.latencyMs, 0.90));
    w.key("p99").value(percentile(s.latencyMs, 0.99));
    w.key("max").value(s.latencyMs.empty() ? 0.0
                                           : s.latencyMs.back());
    w.key("avg").value(average(s.latencyMs));
    w.endObject();
    w.key("compiles").value(s.compiles);
    w.key("disk_hits").value(s.diskHits);
    w.key("deduplicated").value(s.deduped);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = bench::quickMode();
    int clients = quick ? 4 : 8;
    int jobs = quick ? 10 : 50;
    int programs = quick ? 6 : 16;
    int qubits = 8;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--clients" && (v = next()))
            clients = std::atoi(v);
        else if (arg == "--jobs" && (v = next()))
            jobs = std::atoi(v);
        else if (arg == "--programs" && (v = next()))
            programs = std::atoi(v);
        else if (arg == "--qubits" && (v = next()))
            qubits = std::atoi(v);
        else {
            std::fprintf(stderr,
                         "usage: %s [--clients N] [--jobs M] "
                         "[--programs P] [--qubits Q]\n",
                         argv[0]);
            return 2;
        }
    }
    if (clients < 1 || jobs < 1 || programs < 1 || qubits < 1) {
        std::fprintf(stderr, "serve_stress: bad arguments\n");
        return 2;
    }

    // Verify every served result by default (the acceptance bar is
    // zero verify failures under load); TETRIS_VERIFY=0 opts out.
    bool verify = true;
    if (const char *v = std::getenv("TETRIS_VERIFY"))
        verify = std::atoi(v) != 0;
    bench::printBanner(
        "serve_stress: tetrisd under concurrent clients",
        "full frame-protocol round-trips against one resident "
        "engine; warm phase must recompile nothing");
    std::printf("config: %d clients x %d jobs, %d distinct "
                "%d-qubit programs, verify %s\n\n",
                clients, jobs, programs, qubits,
                verify ? "on" : "off");

    EngineOptions eopts;
    eopts.verify = verify;
    eopts.diskCache = DiskCache::openFromEnv();
    Engine engine(eopts);

    serve::ServeOptions sopts;
    sopts.tcpPort = 0;
    auto server = serve::ServeServer::start(engine, sopts);
    if (!server) {
        std::fprintf(stderr,
                     "serve_stress: could not bind a listener\n");
        return 1;
    }

    const CouplingGraph hw = lineTopology(qubits);
    std::vector<serve::SubmitRequest> pool;
    pool.reserve(programs);
    for (int p = 0; p < programs; ++p)
        pool.push_back(serve::makeSubmitRequest(
            "stress-" + std::to_string(p), "",
            buildSyntheticUcc(qubits,
                              static_cast<uint64_t>(p) + 1),
            hw));

    PhaseStats cold = runPhase(engine, server->port(), clients, jobs,
                               pool, "cold");
    PhaseStats warm = runPhase(engine, server->port(), clients, jobs,
                               pool, "warm");

    const bool warm_recompiled = warm.compiles != 0;
    const bool failed = cold.rejected + cold.transportErrors +
                                cold.verifyFail + warm.rejected +
                                warm.transportErrors +
                                warm.verifyFail !=
                            0 ||
                        warm_recompiled;

    server->drain(false);

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value("serve");
    w.key("schema").value("serve-v1");
    w.key("quick").value(quick);
    w.key("config").beginObject();
    w.key("clients").value(clients);
    w.key("jobs_per_client").value(jobs);
    w.key("distinct_programs").value(programs);
    w.key("qubits").value(qubits);
    w.key("verify").value(verify);
    w.key("disk_cache").value(eopts.diskCache != nullptr);
    w.endObject();
    w.key("cold");
    writePhaseJson(w, cold);
    w.key("warm");
    writePhaseJson(w, warm);
    w.key("warm_recompiled").value(warm_recompiled);
    w.key("server").beginObject();
    w.key("requests_served").value(server->requestsServed());
    w.key("bad_frames")
        .value(engine.metrics().count("serve.bad_frames"));
    w.key("rejected_overload")
        .value(engine.metrics().count("serve.rejected_overload"));
    w.endObject();
    w.endObject();

    const char *path = "BENCH_serve.json";
    std::ofstream out(path);
    if (out) {
        out << w.str() << "\n";
        std::printf("\n[wrote %s]\n", path);
    } else {
        std::fprintf(stderr, "serve_stress: cannot write %s\n", path);
    }

    if (warm_recompiled)
        std::fprintf(stderr,
                     "serve_stress: FAIL: warm phase recompiled %llu "
                     "programs (expected pure cache hits)\n",
                     static_cast<unsigned long long>(warm.compiles));
    if (failed)
        std::fprintf(stderr, "serve_stress: FAIL\n");
    else
        std::printf("serve_stress: PASS\n");
    return failed ? 1 : 0;
}

#else // !TETRIS_HAVE_SOCKETS

int
main()
{
    std::fprintf(stderr, "serve_stress: sockets unavailable on this "
                         "platform\n");
    return 1;
}

#endif // TETRIS_HAVE_SOCKETS
