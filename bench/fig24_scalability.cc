/**
 * @file
 * Regenerates Fig. 24: compilation time scalability. Reports the
 * synthesis-only time (no peephole) and the full pipeline time for
 * PH and Tetris across the molecule suite, plus the engine's
 * aggregate per-stage breakdown (schedule/synthesis/peephole).
 *
 * The 4 configurations x N molecules run through the batch engine.
 * Per-job compileSeconds is wall time measured inside each compile
 * call, so with TETRIS_ENGINE_THREADS > 1 concurrent jobs contend
 * for cores and inflate each other's numbers; run with
 * TETRIS_ENGINE_THREADS=1 for paper-faithful uncontended latencies
 * (gate counts are thread-count-invariant either way).
 */

#include <cstdio>

#include "bench_util.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 24: compilation latency (seconds)",
                "Paper: Tetris's own pass costs more than PH's, but "
                "the end-to-end latency including O3 scales better "
                "because fewer gates reach the optimizer.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    std::printf("[engine: %d threads]\n", engine.numThreads());

    PaulihedralOptions ph_raw;
    ph_raw.runPeephole = false;
    TetrisOptions tet_raw;
    tet_raw.runPeephole = false;

    auto specs = benchMolecules();
    std::vector<CompileJob> jobs;
    for (const auto &spec : specs) {
        auto blocks = buildMolecule(spec, "jw");
        // Per molecule: PH raw, PH+O3, Tetris raw, Tetris+O3.
        jobs.push_back(makeJob(spec.name + "/ph", blocks, hw,
                               makePaulihedralPipeline(ph_raw)));
        jobs.push_back(makeJob(spec.name + "/ph+o3", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(spec.name + "/tetris", blocks, hw,
                               makeTetrisPipeline(tet_raw)));
        jobs.push_back(makeJob(spec.name + "/tetris+o3",
                               std::move(blocks), hw,
                               makeTetrisPipeline()));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Bench", "PH", "PH+O3", "Tetris",
                        "Tetris+O3"});
    for (size_t i = 0; i < specs.size(); ++i) {
        const auto *r = &records[4 * i];
        table.addRow({specs[i].name,
                      formatDouble(r[0].second->stats.compileSeconds),
                      formatDouble(r[1].second->stats.compileSeconds),
                      formatDouble(r[2].second->stats.compileSeconds),
                      formatDouble(r[3].second->stats.compileSeconds)});
    }
    table.print();

    const MetricsRegistry &m = engine.metrics();
    std::printf("\nengine stage breakdown (wall seconds summed over "
                "all jobs): schedule %.3f, synthesis %.3f, "
                "peephole %.3f\n",
                m.seconds("compile.schedule"),
                m.seconds("compile.synthesis"),
                m.seconds("compile.peephole"));
    writeBenchJson("fig24", records, engine);
    return 0;
}
