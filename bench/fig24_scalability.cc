/**
 * @file
 * Regenerates Fig. 24: compilation time scalability. Reports the
 * synthesis-only time (no peephole) and the full pipeline time for
 * PH and Tetris across the molecule suite.
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 24: compilation latency (seconds)",
                "Paper: Tetris's own pass costs more than PH's, but "
                "the end-to-end latency including O3 scales better "
                "because fewer gates reach the optimizer.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Bench", "PH", "PH+O3", "Tetris",
                        "Tetris+O3"});

    for (const auto &spec : benchMolecules()) {
        auto blocks = buildMolecule(spec, "jw");

        PaulihedralOptions ph_raw;
        ph_raw.runPeephole = false;
        double ph_t =
            compilePaulihedral(blocks, hw, ph_raw).stats.compileSeconds;
        double ph_o3 =
            compilePaulihedral(blocks, hw).stats.compileSeconds;

        TetrisOptions tet_raw;
        tet_raw.runPeephole = false;
        double tet_t =
            compileTetris(blocks, hw, tet_raw).stats.compileSeconds;
        double tet_o3 = compileTetris(blocks, hw).stats.compileSeconds;

        table.addRow({spec.name, formatDouble(ph_t), formatDouble(ph_o3),
                      formatDouble(tet_t), formatDouble(tet_o3)});
    }
    table.print();
    return 0;
}
