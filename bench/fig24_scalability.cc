/**
 * @file
 * Regenerates Fig. 24: compilation time scalability. Reports the
 * synthesis-only time (no peephole) and the full pipeline time for
 * PH and Tetris across the molecule suite, plus the engine's
 * aggregate per-stage breakdown (schedule/synthesis/peephole).
 *
 * The 4 configurations x N molecules run through the batch engine.
 * Per-job compileSeconds is wall time measured inside each compile
 * call, so with TETRIS_ENGINE_THREADS > 1 concurrent jobs contend
 * for cores and inflate each other's numbers; run with
 * TETRIS_ENGINE_THREADS=1 for paper-faithful uncontended latencies
 * (gate counts are thread-count-invariant either way).
 */

#include <cstdio>

#include "bench_util.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 24: compilation latency (seconds)",
                "Paper: Tetris's own pass costs more than PH's, but "
                "the end-to-end latency including O3 scales better "
                "because fewer gates reach the optimizer.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    std::printf("[engine: %d threads]\n", engine.numThreads());

    auto specs = benchMolecules();
    std::vector<CompileJob> jobs;
    for (const auto &spec : specs) {
        auto blocks = buildMolecule(spec, "jw");
        // Per molecule: PH raw, PH+O3, Tetris raw, Tetris+O3.
        CompileJob ph_raw;
        ph_raw.name = spec.name + "/ph";
        ph_raw.blocks = blocks;
        ph_raw.hw = hw;
        ph_raw.pipeline = PipelineKind::Paulihedral;
        ph_raw.paulihedral.runPeephole = false;
        CompileJob ph_o3 = ph_raw;
        ph_o3.name = spec.name + "/ph+o3";
        ph_o3.paulihedral.runPeephole = true;
        CompileJob tet_raw;
        tet_raw.name = spec.name + "/tetris";
        tet_raw.blocks = blocks;
        tet_raw.hw = hw;
        tet_raw.tetris.runPeephole = false;
        CompileJob tet_o3 = tet_raw;
        tet_o3.name = spec.name + "/tetris+o3";
        tet_o3.tetris.runPeephole = true;
        jobs.push_back(std::move(ph_raw));
        jobs.push_back(std::move(ph_o3));
        jobs.push_back(std::move(tet_raw));
        jobs.push_back(std::move(tet_o3));
    }

    auto results = engine.compileAll(std::move(jobs));

    const char *suffixes[] = {"/ph", "/ph+o3", "/tetris", "/tetris+o3"};
    TablePrinter table({"Bench", "PH", "PH+O3", "Tetris",
                        "Tetris+O3"});
    std::vector<BenchRecord> records;
    for (size_t i = 0; i < specs.size(); ++i) {
        const auto *r = &results[4 * i];
        table.addRow({specs[i].name,
                      formatDouble(r[0]->stats.compileSeconds),
                      formatDouble(r[1]->stats.compileSeconds),
                      formatDouble(r[2]->stats.compileSeconds),
                      formatDouble(r[3]->stats.compileSeconds)});
        for (size_t k = 0; k < 4; ++k)
            records.emplace_back(specs[i].name + suffixes[k], r[k]);
    }
    table.print();

    const MetricsRegistry &m = engine.metrics();
    std::printf("\nengine stage breakdown (wall seconds summed over "
                "all jobs): schedule %.3f, synthesis %.3f, "
                "peephole %.3f\n",
                m.seconds("compile.schedule"),
                m.seconds("compile.synthesis"),
                m.seconds("compile.peephole"));
    writeBenchJson("fig24", records, engine);
    return 0;
}
