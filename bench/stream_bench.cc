/**
 * @file
 * Streaming-frontend benchmark -> BENCH_stream.json.
 *
 * Generates one program per workload family (frontend/workloads.hh),
 * streams each through the windowed StreamCompiler on a grid device,
 * and reports the numbers the streaming design is accountable for:
 *
 *  - ingest rate (instructions/s and MB/s through the parser),
 *  - chunk throughput (chunks/s) and end-to-end latency,
 *  - peak RSS against the window-proportional bound that makes
 *    "O(window) memory" a testable claim instead of a slogan.
 *
 * The JSON schema ("schema": "stream-v1") is understood by
 * scripts/bench_diff.py --mode stream: grid/semantics drift and an
 * RSS bound violation fail, throughput drift warns. smoke.sh runs
 * the quick preset plus a dedicated ~1M-instruction RSS check.
 *
 * Env: TETRIS_BENCH_QUICK=1 shrinks instruction counts for CI;
 * TETRIS_STREAM_WINDOW overrides the window; TETRIS_VERIFY=1 runs
 * the semantic checker on every chunk; TETRIS_STREAM_INSTRUCTIONS
 * overrides the per-workload instruction floor (the smoke 1M run).
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "common/env.hh"
#include "common/json.hh"
#include "frontend/stream_compiler.hh"
#include "frontend/workloads.hh"

namespace fs = std::filesystem;

using namespace tetris;
using namespace tetris::bench;
using namespace tetris::frontend;

namespace
{

struct Row
{
    std::string name;
    std::string format;
    uint64_t generated = 0;
    StreamStats stats;
};

uint64_t
instructionFloor(bool quick)
{
    if (const char *env = std::getenv("TETRIS_STREAM_INSTRUCTIONS")) {
        if (int parsed = parseEnvInt(env, 1, 2000000000))
            return static_cast<uint64_t>(parsed);
    }
    return quick ? 20000 : 200000;
}

/**
 * The memory contract: a fixed process baseline (binary, engine
 * threads, caches) plus a per-window-slot allowance. Deliberately
 * generous — the point is the *shape*: peak RSS must not scale with
 * input length, only with the window.
 */
uint64_t
rssBoundKb(int window)
{
    return 262144 + static_cast<uint64_t>(window) * 192;
}

} // namespace

int
main()
{
    const bool quick = quickMode();
    const int window = resolveStreamWindow();
    const uint64_t floor = instructionFloor(quick);
    printBanner("stream bench",
                "windowed streaming frontend: ingest rate, chunk "
                "throughput, peak RSS");

    Engine &engine = benchEngine();
    auto hw = shareDevice(gridTopology(5, 5));

    struct Spec
    {
        const char *name;
        const char *kind; // shor | grover | chem
        int qubits;
    };
    const std::vector<Spec> specs = {
        {"shor-modexp", "shor", 20},
        {"grover-3sat", "grover", 16},
        {"trotter-chem", "chem", 12},
    };

    fs::path dir =
        fs::temp_directory_path() /
        ("tetris_stream_bench_" + std::to_string(::getpid()));
    fs::create_directories(dir);

    std::vector<Row> rows;
    for (const Spec &spec : specs) {
        WorkloadSpec ws;
        ws.numQubits = spec.qubits;
        ws.minInstructions = floor;
        ws.seed = 42;

        const bool qasm = std::string(spec.kind) == "grover";
        fs::path input =
            dir / (std::string(spec.name) + (qasm ? ".qasm" : ".pauli"));
        Row row;
        row.name = spec.name;
        row.format = qasm ? "qasm" : "pauli";
        {
            std::ofstream out(input, std::ios::binary);
            if (std::string(spec.kind) == "shor")
                row.generated = genShorModExp(out, ws);
            else if (qasm)
                row.generated = genGrover3Sat(out, ws);
            else
                row.generated = genTrotterChem(out, ws);
        }

        StreamOptions opts;
        opts.window = window;
        opts.name = spec.name;
        opts.outputPath = (dir / (std::string(spec.name) + ".tcs")).string();

        std::ifstream in(input, std::ios::binary);
        auto src =
            makeBlockSource(in, SourceFormat::Auto, input.string());
        StreamCompiler sc(engine, hw, opts);
        row.stats = sc.run(*src);

        if (!row.stats.ok) {
            std::fprintf(stderr, "stream %s FAILED: %s %s\n",
                         spec.name, row.stats.failure.c_str(),
                         row.stats.parseError.ok()
                             ? ""
                             : row.stats.parseError.toText().c_str());
            return 1;
        }
        double instr_rate =
            row.stats.totalSeconds > 0
                ? static_cast<double>(row.stats.instructions) /
                      row.stats.totalSeconds
                : 0.0;
        std::printf("  %-13s %9llu instr  %6zu chunks  "
                    "%8.0f instr/s  %6.2fs total\n",
                    spec.name,
                    static_cast<unsigned long long>(
                        row.stats.instructions),
                    row.stats.chunks, instr_rate,
                    row.stats.totalSeconds);
        rows.push_back(std::move(row));
    }

    const uint64_t rss_kb = peakRssKb();
    const uint64_t bound_kb = rssBoundKb(window);
    std::printf("  peak RSS %llu KiB (bound %llu KiB, window %d)\n",
                static_cast<unsigned long long>(rss_kb),
                static_cast<unsigned long long>(bound_kb), window);

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value("stream");
    w.key("schema").value("stream-v1");
    w.key("quickMode").value(quick);
    w.key("window").value(window);
    w.key("instruction_floor").value(floor);
    w.key("peak_rss_kb").value(rss_kb);
    w.key("rss_bound_kb").value(bound_kb);
    w.key("rss_within_bound").value(rss_kb <= bound_kb);
    w.key("rows").beginArray();
    for (const Row &row : rows) {
        const StreamStats &st = row.stats;
        w.beginObject();
        w.key("name").value(row.name);
        w.key("format").value(row.format);
        w.key("qubits").value(st.numQubits);
        w.key("generated_instructions").value(row.generated);
        w.key("instructions").value(st.instructions);
        w.key("bytes").value(st.bytesRead);
        w.key("chunks").value(static_cast<uint64_t>(st.chunks));
        w.key("blocks").value(static_cast<uint64_t>(st.blocks));
        w.key("verify_failures")
            .value(static_cast<uint64_t>(st.verifyFailures));
        w.key("total_gates")
            .value(static_cast<uint64_t>(st.totalGates));
        w.key("cnot_count").value(static_cast<uint64_t>(st.cnotCount));
        w.key("swap_count").value(static_cast<uint64_t>(st.swapCount));
        w.key("parse_seconds").value(st.parseSeconds);
        w.key("compile_seconds").value(st.compileSeconds);
        w.key("total_seconds").value(st.totalSeconds);
        w.key("instructions_per_sec")
            .value(st.totalSeconds > 0
                       ? static_cast<double>(st.instructions) /
                             st.totalSeconds
                       : 0.0);
        w.key("bytes_per_sec")
            .value(st.totalSeconds > 0
                       ? static_cast<double>(st.bytesRead) /
                             st.totalSeconds
                       : 0.0);
        w.key("chunks_per_sec")
            .value(st.totalSeconds > 0
                       ? static_cast<double>(st.chunks) /
                             st.totalSeconds
                       : 0.0);
        w.endObject();
    }
    w.endArray();

    // Aggregate engine metrics (verify counters live here too).
    w.key("metrics").beginObject();
    for (const auto &[name, count] : engine.metrics().counts())
        w.key(name).value(count);
    w.endObject();
    w.endObject();

    std::ofstream json("BENCH_stream.json", std::ios::trunc);
    json << w.str() << "\n";
    std::printf("wrote BENCH_stream.json\n");

    fs::remove_all(dir);

    if (rss_kb > bound_kb) {
        std::fprintf(stderr,
                     "peak RSS %llu KiB exceeds the window bound "
                     "%llu KiB\n",
                     static_cast<unsigned long long>(rss_kb),
                     static_cast<unsigned long long>(bound_kb));
        return 1;
    }
    return 0;
}
