/**
 * @file
 * Regenerates Fig. 22: noise-model fidelity of PH- vs
 * Tetris-compiled circuits as a function of the number of randomly
 * sampled Pauli blocks (1..10). Noise: depolarizing p2 = 1e-3 per
 * CNOT, p1 = 1e-4 per 1Q gate; fidelity = P(all zeros) of circuit +
 * inverse, exactly the paper's randomized-benchmarking setup. LiH
 * uses 100 samples per configuration, CO2 uses 10 (as in the
 * paper); min/mean/max summarize the box plot.
 */

#include <cstdio>

#include <algorithm>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "common/rng.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"
#include "sim/noise.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct Summary
{
    double min, mean, max;
};

Summary
summarize(const std::vector<double> &xs)
{
    double lo = xs[0], hi = xs[0], sum = 0.0;
    for (double x : xs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        sum += x;
    }
    return {lo, sum / xs.size(), hi};
}

} // namespace

int
main()
{
    printBanner("Fig. 22: fidelity vs number of Pauli blocks",
                "Depolarizing noise p2=1e-3, p1=1e-4; higher is "
                "better; Tetris should dominate PH.");

    CouplingGraph hw = ibmIthaca65();
    NoiseModel noise;

    struct Config
    {
        const char *molecule;
        int samples;
    };
    std::vector<Config> configs = {{"LiH", 100}, {"CO2", 10}};
    if (quickMode())
        configs = {{"LiH", 20}};

    TablePrinter table({"Molecule", "#Blocks", "PH min", "PH mean",
                        "PH max", "Tetris min", "Tetris mean",
                        "Tetris max"});

    for (const auto &cfg : configs) {
        auto blocks = buildMolecule(moleculeByName(cfg.molecule), "jw");
        Rng rng(2024);
        for (int nb = 1; nb <= 10; ++nb) {
            std::vector<double> ph_f, tet_f;
            for (int s = 0; s < cfg.samples; ++s) {
                auto picks = rng.sampleIndices(blocks.size(), nb);
                std::vector<PauliBlock> subset;
                for (size_t idx : picks)
                    subset.push_back(blocks[idx]);
                CompileResult ph = compilePaulihedral(subset, hw);
                CompileResult tet = compileTetris(subset, hw);
                ph_f.push_back(echoFidelity(ph.circuit, noise));
                tet_f.push_back(echoFidelity(tet.circuit, noise));
            }
            Summary ph_s = summarize(ph_f);
            Summary tet_s = summarize(tet_f);
            table.addRow({cfg.molecule, std::to_string(nb),
                          formatDouble(ph_s.min), formatDouble(ph_s.mean),
                          formatDouble(ph_s.max),
                          formatDouble(tet_s.min),
                          formatDouble(tet_s.mean),
                          formatDouble(tet_s.max)});
        }
    }
    table.print();
    return 0;
}
