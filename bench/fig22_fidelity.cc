/**
 * @file
 * Regenerates Fig. 22: noise-model fidelity of PH- vs
 * Tetris-compiled circuits as a function of the number of randomly
 * sampled Pauli blocks (1..10). Noise: depolarizing p2 = 1e-3 per
 * CNOT, p1 = 1e-4 per 1Q gate; fidelity = P(all zeros) of circuit +
 * inverse, exactly the paper's randomized-benchmarking setup. LiH
 * uses 100 samples per configuration, CO2 uses 10 (as in the
 * paper); min/mean/max summarize the box plot.
 *
 * All sampled subsets are drawn up front (same RNG stream as the
 * serial version) and every (subset, pipeline) pair compiles as one
 * engine batch; identical subsets dedup through the compile cache.
 * The noisy simulation then runs over the finished circuits.
 */

#include <cstdio>

#include <algorithm>

#include "bench_util.hh"
#include "common/rng.hh"
#include "hardware/topologies.hh"
#include "sim/noise.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct Summary
{
    double min, mean, max;
};

Summary
summarize(const std::vector<double> &xs)
{
    double lo = xs[0], hi = xs[0], sum = 0.0;
    for (double x : xs) {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
        sum += x;
    }
    return {lo, sum / xs.size(), hi};
}

} // namespace

int
main()
{
    printBanner("Fig. 22: fidelity vs number of Pauli blocks",
                "Depolarizing noise p2=1e-3, p1=1e-4; higher is "
                "better; Tetris should dominate PH.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    NoiseModel noise;

    struct Config
    {
        const char *molecule;
        int samples;
    };
    std::vector<Config> configs = {{"LiH", 100}, {"CO2", 10}};
    if (quickMode())
        configs = {{"LiH", 20}};

    // Sample every subset in the serial order, two jobs per sample.
    std::vector<CompileJob> jobs;
    for (const auto &cfg : configs) {
        auto blocks = buildMolecule(moleculeByName(cfg.molecule), "jw");
        Rng rng(2024);
        for (int nb = 1; nb <= 10; ++nb) {
            for (int s = 0; s < cfg.samples; ++s) {
                auto picks = rng.sampleIndices(blocks.size(), nb);
                std::vector<PauliBlock> subset;
                for (size_t idx : picks)
                    subset.push_back(blocks[idx]);
                std::string base = std::string(cfg.molecule) + "/nb=" +
                                   std::to_string(nb) + "/s=" +
                                   std::to_string(s);
                jobs.push_back(makeJob(base + "/ph", subset, hw,
                                       makePaulihedralPipeline()));
                jobs.push_back(makeJob(base + "/tetris",
                                       std::move(subset), hw,
                                       makeTetrisPipeline()));
            }
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Molecule", "#Blocks", "PH min", "PH mean",
                        "PH max", "Tetris min", "Tetris mean",
                        "Tetris max"});
    size_t next = 0;
    for (const auto &cfg : configs) {
        for (int nb = 1; nb <= 10; ++nb) {
            std::vector<double> ph_f, tet_f;
            for (int s = 0; s < cfg.samples; ++s) {
                ph_f.push_back(echoFidelity(
                    records[next].second->circuit, noise));
                tet_f.push_back(echoFidelity(
                    records[next + 1].second->circuit, noise));
                next += 2;
            }
            Summary ph_s = summarize(ph_f);
            Summary tet_s = summarize(tet_f);
            table.addRow({cfg.molecule, std::to_string(nb),
                          formatDouble(ph_s.min), formatDouble(ph_s.mean),
                          formatDouble(ph_s.max),
                          formatDouble(tet_s.min),
                          formatDouble(tet_s.mean),
                          formatDouble(tet_s.max)});
        }
    }
    table.print();
    writeBenchJson("fig22", records, engine);
    return 0;
}
