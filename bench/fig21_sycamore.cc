/**
 * @file
 * Regenerates Fig. 21: PH vs Tetris on the Google-Sycamore-like
 * 64-qubit backend (JW): depth and total CNOT count with the
 * SWAP-induced breakdown.
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 21: Sycamore backend (JW)",
                "Paper: depth improvement -18.1..-47.8%, CNOT "
                "improvement -25.5..-42.3%.");

    CouplingGraph hw = googleSycamore64();
    TablePrinter table({"Bench", "PH depth", "Tet depth", "Depth%",
                        "PH CNOT", "Tet CNOT", "CNOT%", "PH_S",
                        "Tetris_S"});

    for (const auto &spec : benchMolecules()) {
        auto blocks = buildMolecule(spec, "jw");
        CompileResult ph = compilePaulihedral(blocks, hw);
        CompileResult tet = compileTetris(blocks, hw);
        table.addRow({
            spec.name,
            formatCount(ph.stats.depth),
            formatCount(tet.stats.depth),
            formatPercent(
                -improvement(ph.stats.depth, tet.stats.depth)),
            formatCount(ph.stats.cnotCount),
            formatCount(tet.stats.cnotCount),
            formatPercent(
                -improvement(ph.stats.cnotCount, tet.stats.cnotCount)),
            formatCount(ph.stats.swapCnots),
            formatCount(tet.stats.swapCnots),
        });
    }
    table.print();
    return 0;
}
