/**
 * @file
 * Regenerates Fig. 21: PH vs Tetris on the Google-Sycamore-like
 * 64-qubit backend (JW): depth and total CNOT count with the
 * SWAP-induced breakdown. Compiled as one parallel engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 21: Sycamore backend (JW)",
                "Paper: depth improvement -18.1..-47.8%, CNOT "
                "improvement -25.5..-42.3%.");

    auto hw = shareDevice(googleSycamore64());
    Engine &engine = benchEngine();

    const size_t stacks = 2; // ph, tetris
    auto mols = benchMolecules();
    std::vector<CompileJob> jobs;
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        jobs.push_back(makeJob(spec.name + "/ph", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(spec.name + "/tetris", std::move(blocks),
                               hw, makeTetrisPipeline()));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Bench", "PH depth", "Tet depth", "Depth%",
                        "PH CNOT", "Tet CNOT", "CNOT%", "PH_S",
                        "Tetris_S"});
    for (size_t i = 0; i < mols.size(); ++i) {
        const CompileStats &ph = records[stacks * i].second->stats;
        const CompileStats &tet =
            records[stacks * i + 1].second->stats;
        table.addRow({
            mols[i].name,
            formatCount(ph.depth),
            formatCount(tet.depth),
            formatPercent(-improvement(ph.depth, tet.depth)),
            formatCount(ph.cnotCount),
            formatCount(tet.cnotCount),
            formatPercent(-improvement(ph.cnotCount, tet.cnotCount)),
            formatCount(ph.swapCnots),
            formatCount(tet.swapCnots),
        });
    }
    table.print();
    writeBenchJson("fig21", records, engine);
    return 0;
}
