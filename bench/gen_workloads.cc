/**
 * @file
 * Workload-generator CLI: stream a synthetic production-scale
 * program (frontend/workloads.hh) to a file or stdout.
 *
 *   gen_workloads --kind shor|grover|chem [--qubits N]
 *                 [--min-instructions M] [--seed S] [--out PATH]
 *
 * shor and chem emit the Pauli-list format; grover emits OpenQASM 2.
 * Writing streams line by line, so --min-instructions 100000000 works
 * in O(1) memory — the point of the exercise.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "frontend/workloads.hh"

using namespace tetris::frontend;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --kind shor|grover|chem [--qubits N]\n"
        "          [--min-instructions M] [--seed S] [--out PATH]\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string kind;
    std::string out_path = "-";
    WorkloadSpec spec;

    for (int i = 1; i < argc; ++i) {
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--kind") == 0) {
            kind = next("--kind");
        } else if (std::strcmp(argv[i], "--qubits") == 0) {
            spec.numQubits = std::atoi(next("--qubits"));
        } else if (std::strcmp(argv[i], "--min-instructions") == 0) {
            spec.minInstructions = static_cast<uint64_t>(
                std::atoll(next("--min-instructions")));
        } else if (std::strcmp(argv[i], "--seed") == 0) {
            spec.seed =
                static_cast<uint64_t>(std::atoll(next("--seed")));
        } else if (std::strcmp(argv[i], "--out") == 0) {
            out_path = next("--out");
        } else {
            return usage(argv[0]);
        }
    }
    if (spec.numQubits < 4 || spec.numQubits > 4096) {
        std::fprintf(stderr, "--qubits must be in [4, 4096]\n");
        return 2;
    }

    std::ofstream file;
    std::ostream *out = &std::cout;
    if (out_path != "-") {
        file.open(out_path, std::ios::binary | std::ios::trunc);
        if (!file) {
            std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
            return 1;
        }
        out = &file;
    }

    uint64_t written = 0;
    if (kind == "shor") {
        written = genShorModExp(*out, spec);
    } else if (kind == "grover") {
        written = genGrover3Sat(*out, spec);
    } else if (kind == "chem") {
        written = genTrotterChem(*out, spec);
    } else {
        return usage(argv[0]);
    }
    out->flush();
    if (!*out) {
        std::fprintf(stderr, "write failure on %s\n", out_path.c_str());
        return 1;
    }

    std::fprintf(stderr,
                 "%s: %llu instructions, %d qubits, seed %llu -> %s\n",
                 kind.c_str(),
                 static_cast<unsigned long long>(written),
                 spec.numQubits,
                 static_cast<unsigned long long>(spec.seed),
                 out_path.c_str());
    return 0;
}
