/**
 * @file
 * Regenerates Fig. 17: the logical-CNOT cancellation ratio achieved
 * by PH, Tetris, and the max-cancel logical circuit, for both
 * encoders. Expected ordering: PH <= Tetris <= max_cancel, with
 * Tetris close to the max_cancel bound and scaling with size.
 */

#include <cstdio>

#include "baselines/max_cancel.hh"
#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "circuit/peephole.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 17: logical CNOT cancellation ratio",
                "max_cancel = single-leaf-tree logical circuit + "
                "peephole (no hardware constraint).");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table(
        {"Encoder", "Bench", "PH", "Tetris", "max_cancel"});

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            CompileResult ph = compilePaulihedral(blocks, hw);
            CompileResult tet = compileTetris(blocks, hw);
            Circuit max_logical =
                peepholeOptimize(synthesizeMaxCancelLogical(blocks));
            double naive =
                static_cast<double>(naiveCnotCount(blocks));
            double max_ratio = 1.0 - max_logical.cnotCount() / naive;
            table.addRow({enc, spec.name,
                          formatPercent(ph.stats.cancelRatio),
                          formatPercent(tet.stats.cancelRatio),
                          formatPercent(max_ratio)});
        }
    }
    table.print();
    return 0;
}
