/**
 * @file
 * Regenerates Fig. 17: the logical-CNOT cancellation ratio achieved
 * by PH, Tetris, and the max-cancel logical circuit, for both
 * encoders. Expected ordering: PH <= Tetris <= max_cancel, with
 * Tetris close to the max_cancel bound and scaling with size. The
 * bound is the "max-cancel" pipeline unrouted with logical peephole
 * (no hardware constraint); all three run as one engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 17: logical CNOT cancellation ratio",
                "max_cancel = single-leaf-tree logical circuit + "
                "peephole (no hardware constraint).");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    MaxCancelOptions bound;
    bound.route = false;
    bound.logicalPeephole = true;

    const size_t stacks = 3; // ph, tetris, max-cancel bound
    std::vector<CompileJob> jobs;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            std::string base = std::string(enc) + "/" + spec.name;
            jobs.push_back(makeJob(base + "/ph", blocks, hw,
                                   makePaulihedralPipeline()));
            jobs.push_back(makeJob(base + "/tetris", blocks, hw,
                                   makeTetrisPipeline()));
            jobs.push_back(makeJob(base + "/max-cancel",
                                   std::move(blocks), hw,
                                   makeMaxCancelPipeline(bound)));
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table(
        {"Encoder", "Bench", "PH", "Tetris", "max_cancel"});
    size_t row = 0;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            const auto *r = &records[stacks * row++];
            table.addRow(
                {enc, spec.name,
                 formatPercent(r[0].second->stats.cancelRatio),
                 formatPercent(r[1].second->stats.cancelRatio),
                 formatPercent(r[2].second->stats.cancelRatio)});
        }
    }
    table.print();
    writeBenchJson("fig17", records, engine);
    return 0;
}
