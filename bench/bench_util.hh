/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper and prints the corresponding rows (plus, where available,
 * the paper's published values for side-by-side comparison).
 * Set TETRIS_BENCH_QUICK=1 to restrict the molecule set to the
 * smaller half for fast smoke runs.
 *
 * Binaries with multi-molecule x multi-config sweeps run their jobs
 * through the shared batch engine (benchEngine()) so the sweep
 * parallelizes across TETRIS_ENGINE_THREADS workers, and drop a
 * machine-readable BENCH_<artifact>.json trajectory via
 * writeBenchJson().
 *
 * When TETRIS_CACHE_DIR is set the engine also opens the persistent
 * compile-artifact store (engine/disk_cache.hh), so a repeated run
 * of the same binary deserializes its results instead of
 * recompiling; the trajectory's "cache.disk" object reports that
 * traffic.
 *
 * TETRIS_VERIFY=1 turns on the semantic equivalence verifier
 * (verify/verify.hh) for every result -- fresh compilations and
 * deserialized artifacts alike -- and the trajectory gains a
 * "verify" object with pass/fail/skipped counters.
 *
 * Ctrl-C during a sweep cancels every job still queued
 * (Engine::cancelPending) instead of killing the process: the binary
 * finishes with `cancelled` placeholder rows, still writes its
 * partial BENCH_*.json (flagged "interrupted": true), and a second
 * Ctrl-C terminates normally.
 */

#ifndef TETRIS_BENCH_BENCH_UTIL_HH
#define TETRIS_BENCH_BENCH_UTIL_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chem/uccsd.hh"
#include "common/table.hh"
#include "core/pipeline_adapters.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"
#include "pauli/pauli_block.hh"

namespace tetris::bench
{

/** True when TETRIS_BENCH_QUICK is set to a non-zero value. */
bool quickMode();

/** True when TETRIS_VERIFY is set to a non-zero value. */
bool verifyEnabled();

/** Molecule list honoring quick mode (first `quick_count` entries). */
std::vector<MoleculeSpec> benchMolecules(size_t quick_count = 3);

/** Print a section banner naming the paper artifact being rebuilt. */
void printBanner(const std::string &title, const std::string &note);

/** Percentage improvement of b over a: (a-b)/a. */
double improvement(double a, double b);

/**
 * The process-wide batch engine all bench sweeps submit to. Prints a
 * "[done/total] name" progress line per finished job to stderr when
 * it is a terminal; TETRIS_BENCH_PROGRESS=1/0 forces it on/off.
 */
Engine &benchEngine();

/** Wrap a device for sharing across many CompileJobs. */
std::shared_ptr<const CouplingGraph> shareDevice(CouplingGraph hw);

/** Assemble a CompileJob (null pipeline = default Tetris). */
CompileJob makeJob(std::string name, std::vector<PauliBlock> blocks,
                   std::shared_ptr<const CouplingGraph> hw,
                   PipelinePtr pipeline = nullptr);

/** One named result row of a finished sweep. */
using BenchRecord =
    std::pair<std::string, std::shared_ptr<const CompileResult>>;

/**
 * Compile the whole sweep through `engine` and pair each result with
 * its job's name, in submission order -- the input of both the table
 * printers and writeBenchJson().
 */
std::vector<BenchRecord> runJobs(Engine &engine,
                                 std::vector<CompileJob> jobs);

/**
 * Write BENCH_<artifact>.json in the working directory: per-job
 * CompileStats keyed by job name plus the engine's aggregate
 * metrics. Returns the path written, or "" on failure.
 */
std::string writeBenchJson(const std::string &artifact,
                           const std::vector<BenchRecord> &records,
                           const Engine &engine);

} // namespace tetris::bench

#endif // TETRIS_BENCH_BENCH_UTIL_HH
