/**
 * @file
 * Shared helpers for the benchmark harness.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper and prints the corresponding rows (plus, where available,
 * the paper's published values for side-by-side comparison).
 * Set TETRIS_BENCH_QUICK=1 to restrict the molecule set to the
 * smaller half for fast smoke runs.
 */

#ifndef TETRIS_BENCH_BENCH_UTIL_HH
#define TETRIS_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "chem/uccsd.hh"
#include "common/table.hh"
#include "hardware/topologies.hh"
#include "pauli/pauli_block.hh"

namespace tetris::bench
{

/** True when TETRIS_BENCH_QUICK is set to a non-zero value. */
bool quickMode();

/** Molecule list honoring quick mode (first `quick_count` entries). */
std::vector<MoleculeSpec> benchMolecules(size_t quick_count = 3);

/** Print a section banner naming the paper artifact being rebuilt. */
void printBanner(const std::string &title, const std::string &note);

/** Percentage improvement of b over a: (a-b)/a. */
double improvement(double a, double b);

} // namespace tetris::bench

#endif // TETRIS_BENCH_BENCH_UTIL_HH
