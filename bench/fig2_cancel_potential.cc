/**
 * @file
 * Regenerates Fig. 2: the CNOT gate-cancellation opportunity gap.
 * For each molecule and encoder, the ratio of CNOTs Paulihedral
 * actually cancels versus the analytic maximum the Pauli-string
 * grouping admits (max_cancel). The PH compilations run through the
 * batch engine ("paulihedral" pipeline); the bound is the closed-form
 * maxCancelCnotBound(), no compilation needed.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 2: CNOT cancellation opportunity (PH vs max_cancel)",
                "Paper (JW): PH 37.8..50.8%, max 61.1..81.1%. "
                "Paper (BK): PH 24.9..43.4%, max 56.2..76.9%.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    std::vector<CompileJob> jobs;
    std::vector<double> max_ratios;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            max_ratios.push_back(
                static_cast<double>(maxCancelCnotBound(blocks)) /
                static_cast<double>(naiveCnotCount(blocks)));
            jobs.push_back(makeJob(std::string(enc) + "/" + spec.name +
                                       "/ph",
                                   std::move(blocks), hw,
                                   makePaulihedralPipeline()));
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table(
        {"Encoder", "Bench", "PH cancel", "max_cancel bound"});
    size_t row = 0;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            table.addRow({enc, spec.name,
                          formatPercent(
                              records[row].second->stats.cancelRatio),
                          formatPercent(max_ratios[row])});
            ++row;
        }
    }
    table.print();
    writeBenchJson("fig2", records, engine);
    return 0;
}
