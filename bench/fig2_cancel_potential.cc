/**
 * @file
 * Regenerates Fig. 2: the CNOT gate-cancellation opportunity gap.
 * For each molecule and encoder, the ratio of CNOTs Paulihedral
 * actually cancels versus the analytic maximum the Pauli-string
 * grouping admits (max_cancel).
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 2: CNOT cancellation opportunity (PH vs max_cancel)",
                "Paper (JW): PH 37.8..50.8%, max 61.1..81.1%. "
                "Paper (BK): PH 24.9..43.4%, max 56.2..76.9%.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table(
        {"Encoder", "Bench", "PH cancel", "max_cancel bound"});

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            CompileResult ph = compilePaulihedral(blocks, hw);
            double max_ratio =
                static_cast<double>(maxCancelCnotBound(blocks)) /
                static_cast<double>(naiveCnotCount(blocks));
            table.addRow({enc, spec.name,
                          formatPercent(ph.stats.cancelRatio),
                          formatPercent(max_ratio)});
        }
    }
    table.print();
    return 0;
}
