/**
 * @file
 * Regenerates Table II: Paulihedral vs Tetris on the 65-qubit
 * heavy-hex backend -- total gates, CNOT gates, depth, and duration
 * with improvement percentages -- for the six molecules under both
 * encoders plus the synthetic UCC suite.
 *
 * All (workload, pipeline) pairs are submitted to the batch engine
 * and compiled N-way parallel; rows are printed from the results in
 * submission order, so the table is identical to the serial run.
 */

#include <cstdio>

#include "bench_util.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct RowSpec
{
    std::string group;
    std::string name;
};

void
addComparisonRow(TablePrinter &table, const RowSpec &spec,
                 const CompileStats &ph, const CompileStats &tet)
{
    auto pct = [](double a, double b) {
        return formatPercent(-improvement(a, b)); // paper prints -x%
    };
    table.addRow({
        spec.group,
        spec.name,
        formatCount(ph.totalGateCount),
        formatCount(tet.totalGateCount),
        pct(ph.totalGateCount, tet.totalGateCount),
        formatCount(ph.cnotCount),
        formatCount(tet.cnotCount),
        pct(ph.cnotCount, tet.cnotCount),
        formatCount(ph.depth),
        formatCount(tet.depth),
        pct(ph.depth, tet.depth),
        formatCount(ph.durationDt),
        formatCount(tet.durationDt),
        pct(ph.durationDt, tet.durationDt),
    });
}

} // namespace

int
main()
{
    printBanner(
        "Table II: Paulihedral (PH) vs Tetris on IBM heavy-hex 65q",
        "Negative percentages = reduction by Tetris (paper JW CNOT: "
        "-17.2..-40.7%, depth: -11.0..-37.6%).");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    std::printf("[engine: %d threads]\n", engine.numThreads());

    std::vector<RowSpec> rows;
    std::vector<CompileJob> jobs; // PH then Tetris, per row
    auto addWorkload = [&](const std::string &group,
                           const std::string &name,
                           std::vector<PauliBlock> blocks) {
        rows.push_back({group, name});
        jobs.push_back(makeJob(name + "/ph", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(name + "/tetris", std::move(blocks), hw,
                               makeTetrisPipeline()));
    };

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            addWorkload(enc == std::string("jw") ? "Jordan-Wigner"
                                                 : "Bravyi-Kitaev",
                        spec.name, buildMolecule(spec, enc));
        }
    }

    std::vector<int> ucc_sizes = {10, 15, 20, 25, 30, 35};
    if (quickMode())
        ucc_sizes = {10, 15};
    for (int n : ucc_sizes) {
        addWorkload("Synthetic", "UCC-" + std::to_string(n),
                    buildSyntheticUcc(n, 1000 + n));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Encoder", "Bench", "Tot PH", "Tot Tet", "Tot%",
                        "CNOT PH", "CNOT Tet", "CNOT%", "Dep PH",
                        "Dep Tet", "Dep%", "Dur PH", "Dur Tet", "Dur%"});
    for (size_t i = 0; i < rows.size(); ++i) {
        addComparisonRow(table, rows[i], records[2 * i].second->stats,
                         records[2 * i + 1].second->stats);
    }
    table.print();
    writeBenchJson("table2", records, engine);
    return 0;
}
