/**
 * @file
 * Regenerates Table II: Paulihedral vs Tetris on the 65-qubit
 * heavy-hex backend -- total gates, CNOT gates, depth, and duration
 * with improvement percentages -- for the six molecules under both
 * encoders plus the synthetic UCC suite.
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

void
addComparisonRow(TablePrinter &table, const std::string &group,
                 const std::string &name,
                 const std::vector<PauliBlock> &blocks,
                 const CouplingGraph &hw)
{
    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult tet = compileTetris(blocks, hw);

    auto pct = [](double a, double b) {
        return formatPercent(-improvement(a, b)); // paper prints -x%
    };
    table.addRow({
        group,
        name,
        formatCount(ph.stats.totalGateCount),
        formatCount(tet.stats.totalGateCount),
        pct(ph.stats.totalGateCount, tet.stats.totalGateCount),
        formatCount(ph.stats.cnotCount),
        formatCount(tet.stats.cnotCount),
        pct(ph.stats.cnotCount, tet.stats.cnotCount),
        formatCount(ph.stats.depth),
        formatCount(tet.stats.depth),
        pct(ph.stats.depth, tet.stats.depth),
        formatCount(ph.stats.durationDt),
        formatCount(tet.stats.durationDt),
        pct(ph.stats.durationDt, tet.stats.durationDt),
    });
}

} // namespace

int
main()
{
    printBanner(
        "Table II: Paulihedral (PH) vs Tetris on IBM heavy-hex 65q",
        "Negative percentages = reduction by Tetris (paper JW CNOT: "
        "-17.2..-40.7%, depth: -11.0..-37.6%).");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Encoder", "Bench", "Tot PH", "Tot Tet", "Tot%",
                        "CNOT PH", "CNOT Tet", "CNOT%", "Dep PH",
                        "Dep Tet", "Dep%", "Dur PH", "Dur Tet", "Dur%"});

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            addComparisonRow(table,
                             enc == std::string("jw") ? "Jordan-Wigner"
                                                      : "Bravyi-Kitaev",
                             spec.name, buildMolecule(spec, enc), hw);
        }
    }

    std::vector<int> ucc_sizes = {10, 15, 20, 25, 30, 35};
    if (quickMode())
        ucc_sizes = {10, 15};
    for (int n : ucc_sizes) {
        addComparisonRow(table, "Synthetic", "UCC-" + std::to_string(n),
                         buildSyntheticUcc(n, 1000 + n), hw);
    }

    table.print();
    return 0;
}
