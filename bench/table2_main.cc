/**
 * @file
 * Regenerates Table II: Paulihedral vs Tetris on the 65-qubit
 * heavy-hex backend -- total gates, CNOT gates, depth, and duration
 * with improvement percentages -- for the six molecules under both
 * encoders plus the synthetic UCC suite.
 *
 * All (workload, pipeline) pairs are submitted to the batch engine
 * and compiled N-way parallel; rows are printed from the results in
 * submission order, so the table is identical to the serial run.
 */

#include <cstdio>

#include "bench_util.hh"
#include "engine/engine.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct RowSpec
{
    std::string group;
    std::string name;
};

void
addComparisonRow(TablePrinter &table, const RowSpec &spec,
                 const CompileStats &ph, const CompileStats &tet)
{
    auto pct = [](double a, double b) {
        return formatPercent(-improvement(a, b)); // paper prints -x%
    };
    table.addRow({
        spec.group,
        spec.name,
        formatCount(ph.totalGateCount),
        formatCount(tet.totalGateCount),
        pct(ph.totalGateCount, tet.totalGateCount),
        formatCount(ph.cnotCount),
        formatCount(tet.cnotCount),
        pct(ph.cnotCount, tet.cnotCount),
        formatCount(ph.depth),
        formatCount(tet.depth),
        pct(ph.depth, tet.depth),
        formatCount(ph.durationDt),
        formatCount(tet.durationDt),
        pct(ph.durationDt, tet.durationDt),
    });
}

} // namespace

int
main()
{
    printBanner(
        "Table II: Paulihedral (PH) vs Tetris on IBM heavy-hex 65q",
        "Negative percentages = reduction by Tetris (paper JW CNOT: "
        "-17.2..-40.7%, depth: -11.0..-37.6%).");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    std::printf("[engine: %d threads]\n", engine.numThreads());

    std::vector<RowSpec> rows;
    std::vector<CompileJob> jobs; // PH then Tetris, per row
    auto addWorkload = [&](const std::string &group,
                           const std::string &name,
                           std::vector<PauliBlock> blocks) {
        rows.push_back({group, name});
        CompileJob ph;
        ph.name = name + "/ph";
        ph.blocks = blocks;
        ph.hw = hw;
        ph.pipeline = PipelineKind::Paulihedral;
        jobs.push_back(std::move(ph));
        CompileJob tet;
        tet.name = name + "/tetris";
        tet.blocks = std::move(blocks);
        tet.hw = hw;
        jobs.push_back(std::move(tet));
    };

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            addWorkload(enc == std::string("jw") ? "Jordan-Wigner"
                                                 : "Bravyi-Kitaev",
                        spec.name, buildMolecule(spec, enc));
        }
    }

    std::vector<int> ucc_sizes = {10, 15, 20, 25, 30, 35};
    if (quickMode())
        ucc_sizes = {10, 15};
    for (int n : ucc_sizes) {
        addWorkload("Synthetic", "UCC-" + std::to_string(n),
                    buildSyntheticUcc(n, 1000 + n));
    }

    auto results = engine.compileAll(std::move(jobs));

    TablePrinter table({"Encoder", "Bench", "Tot PH", "Tot Tet", "Tot%",
                        "CNOT PH", "CNOT Tet", "CNOT%", "Dep PH",
                        "Dep Tet", "Dep%", "Dur PH", "Dur Tet", "Dur%"});
    std::vector<BenchRecord> records;
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &ph = results[2 * i];
        const auto &tet = results[2 * i + 1];
        addComparisonRow(table, rows[i], ph->stats, tet->stats);
        records.emplace_back(rows[i].name + "/ph", ph);
        records.emplace_back(rows[i].name + "/tetris", tet);
    }
    table.print();
    writeBenchJson("table2", records, engine);
    return 0;
}
