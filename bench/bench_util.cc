#include "bench_util.hh"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <unistd.h>

#include "common/json.hh"
#include "engine/disk_cache.hh"
#include "engine/stats.hh"

namespace tetris::bench
{

bool
quickMode()
{
    const char *v = std::getenv("TETRIS_BENCH_QUICK");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

bool
verifyEnabled()
{
    const char *v = std::getenv("TETRIS_VERIFY");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

std::vector<MoleculeSpec>
benchMolecules(size_t quick_count)
{
    std::vector<MoleculeSpec> specs = moleculeBenchmarks();
    if (quickMode() && specs.size() > quick_count)
        specs.resize(quick_count);
    return specs;
}

void
printBanner(const std::string &title, const std::string &note)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("\n");
}

double
improvement(double a, double b)
{
    return a == 0.0 ? 0.0 : (a - b) / a;
}

namespace
{

/** Default: progress on a terminal only; the env var overrides. */
bool
progressEnabled()
{
    if (const char *v = std::getenv("TETRIS_BENCH_PROGRESS"))
        return std::strcmp(v, "0") != 0;
    return isatty(fileno(stderr)) != 0;
}

/**
 * Ctrl-C on a long sweep: abandon everything still queued so the
 * binary reaches its table printers and writeBenchJson() with the
 * results finished so far (cancelled jobs carry the `cancelled`
 * flag; the trajectory records "interrupted": true). Only
 * async-signal-safe work happens here -- cancelPending() is a
 * lock-free atomic store. The handler then re-arms SIG_DFL so a
 * second Ctrl-C kills the process the ordinary way.
 */
Engine *g_sigint_engine = nullptr;

void
benchSigintHandler(int)
{
    if (g_sigint_engine != nullptr)
        g_sigint_engine->cancelPending();
    std::signal(SIGINT, SIG_DFL);
}

EngineOptions
benchEngineOptions()
{
    EngineOptions opts;
    // Persistent artifact store: active only when TETRIS_CACHE_DIR
    // is set, so repeated sweeps skip recompilation entirely.
    opts.diskCache = DiskCache::openFromEnv();
    // Semantic backstop: TETRIS_VERIFY=1 runs every result (fresh or
    // deserialized) through the equivalence verifier.
    opts.verify = verifyEnabled();
    if (progressEnabled()) {
        opts.onJobDone = [](size_t done, size_t total,
                            const std::string &name) {
            std::fprintf(stderr, "  [%zu/%zu] %s\n", done, total,
                         name.c_str());
        };
    }
    return opts;
}

} // namespace

Engine &
benchEngine()
{
    static Engine engine(benchEngineOptions());
    static const bool sigint_hooked = [] {
        g_sigint_engine = &engine;
        std::signal(SIGINT, benchSigintHandler);
        return true;
    }();
    (void)sigint_hooked;
    return engine;
}

std::shared_ptr<const CouplingGraph>
shareDevice(CouplingGraph hw)
{
    return std::make_shared<const CouplingGraph>(std::move(hw));
}

CompileJob
makeJob(std::string name, std::vector<PauliBlock> blocks,
        std::shared_ptr<const CouplingGraph> hw, PipelinePtr pipeline)
{
    CompileJob job;
    job.name = std::move(name);
    job.blocks = std::move(blocks);
    job.hw = std::move(hw);
    if (pipeline)
        job.pipeline = std::move(pipeline);
    return job;
}

std::vector<BenchRecord>
runJobs(Engine &engine, std::vector<CompileJob> jobs)
{
    std::vector<std::string> names;
    names.reserve(jobs.size());
    for (const auto &job : jobs)
        names.push_back(job.name);

    // Live progress for long sweeps: with TETRIS_STATS_INTERVAL set,
    // a background thread prints throughput/in-flight/ETA lines while
    // compileAll blocks. Off (no thread) when the variable is unset.
    StatsReporter reporter(engine);
    auto results = engine.compileAll(std::move(jobs));
    reporter.stop();

    std::vector<BenchRecord> records;
    records.reserve(results.size());
    for (size_t i = 0; i < results.size(); ++i)
        records.emplace_back(std::move(names[i]), results[i]);
    return records;
}

std::string
writeBenchJson(const std::string &artifact,
               const std::vector<BenchRecord> &records,
               const Engine &engine)
{
    JsonWriter w;
    w.beginObject();
    w.key("artifact").value(artifact);
    // Document format version: bench-v2 added the engine.histograms
    // section (job latency / queue wait percentiles). Absent in
    // pre-v2 files; scripts/bench_diff.py accepts both but refuses
    // to diff across versions.
    w.key("schema").value("bench-v2");
    w.key("quickMode").value(quickMode());
    w.key("interrupted").value(engine.cancelRequested());
    w.key("threads").value(engine.numThreads());
    w.key("jobs").beginArray();
    for (const auto &[name, result] : records) {
        w.beginObject();
        w.key("name").value(name);
        if (result) {
            w.key("cancelled").value(result->cancelled);
            w.key("stats");
            writeJson(w, result->stats);
        } else {
            w.key("stats").null();
        }
        w.endObject();
    }
    w.endArray();
    w.key("engine");
    engine.metrics().writeJson(w);
    w.key("cache").beginObject();
    w.key("hits").value(
        static_cast<uint64_t>(engine.cache().hits()));
    w.key("misses").value(
        static_cast<uint64_t>(engine.cache().misses()));
    w.key("shard_count").value(
        static_cast<uint64_t>(engine.cache().shardCount()));
    w.key("lock_wait_ns").value(engine.cache().lockWaitNs());
    w.key("disk").beginObject();
    const DiskCache *disk = engine.diskCache();
    w.key("enabled").value(disk != nullptr);
    if (disk != nullptr) {
        w.key("dir").value(disk->dir());
        w.key("hits").value(static_cast<uint64_t>(disk->hits()));
        w.key("misses").value(static_cast<uint64_t>(disk->misses()));
        w.key("writes").value(static_cast<uint64_t>(disk->writes()));
        w.key("mmap_loads").value(
            static_cast<uint64_t>(disk->mmapLoads()));
        w.key("buffered_loads").value(
            static_cast<uint64_t>(disk->bufferedLoads()));
    }
    w.endObject();
    w.endObject();
    w.key("verify").beginObject();
    w.key("enabled").value(engine.verifyEnabled());
    w.key("pass").value(engine.metrics().count("verify.pass"));
    w.key("fail").value(engine.metrics().count("verify.fail"));
    w.key("skipped").value(engine.metrics().count("verify.skipped"));
    w.endObject();
    w.endObject();

    std::string path = "BENCH_" + artifact + ".json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warn: cannot write %s\n", path.c_str());
        return "";
    }
    out << w.str() << "\n";
    std::printf("[wrote %s]\n", path.c_str());
    return path;
}

} // namespace tetris::bench
