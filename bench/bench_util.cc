#include "bench_util.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tetris::bench
{

bool
quickMode()
{
    const char *v = std::getenv("TETRIS_BENCH_QUICK");
    return v != nullptr && std::strcmp(v, "0") != 0;
}

std::vector<MoleculeSpec>
benchMolecules(size_t quick_count)
{
    std::vector<MoleculeSpec> specs = moleculeBenchmarks();
    if (quickMode() && specs.size() > quick_count)
        specs.resize(quick_count);
    return specs;
}

void
printBanner(const std::string &title, const std::string &note)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!note.empty())
        std::printf("%s\n", note.c_str());
    std::printf("\n");
}

double
improvement(double a, double b)
{
    return a == 0.0 ? 0.0 : (a - b) / a;
}

} // namespace tetris::bench
