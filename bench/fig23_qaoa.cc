/**
 * @file
 * Regenerates Fig. 23: QAOA benchmarks. Gate count and depth of the
 * 2QAN proxy and Tetris (bridging + qubit reuse), normalized to
 * Paulihedral; five random graph instances per benchmark, averaged.
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "baselines/qaoa_2qan.hh"
#include "bench_util.hh"
#include "core/qaoa_pass.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 23: QAOA (normalized to Paulihedral; lower is "
                "better)",
                "Paper: Tetris averages -66.5% depth / -60.6% gates "
                "vs PH and beats 2QAN by 15-20%.");

    CouplingGraph hw = ibmIthaca65();
    const int seeds = quickMode() ? 2 : 5;

    TablePrinter table({"Bench", "2QAN/PH gates", "Tetris/PH gates",
                        "2QAN/PH depth", "Tetris/PH depth"});

    for (const auto &spec : qaoaBenchmarks()) {
        double qg = 0, tg = 0, qd = 0, td = 0;
        for (int s = 0; s < seeds; ++s) {
            Graph g = buildQaoaGraph(spec, 100 + s);
            auto blocks = buildQaoaCostBlocks(g, 0.35);
            CompileResult ph = compilePaulihedral(blocks, hw);
            CompileResult qan = compile2qanProxy(blocks, hw);
            CompileResult tet = compileQaoaTetris(blocks, hw);
            qg += static_cast<double>(qan.stats.cnotCount) /
                  ph.stats.cnotCount;
            tg += static_cast<double>(tet.stats.cnotCount) /
                  ph.stats.cnotCount;
            qd += static_cast<double>(qan.stats.depth) / ph.stats.depth;
            td += static_cast<double>(tet.stats.depth) / ph.stats.depth;
        }
        table.addRow({spec.name, formatDouble(qg / seeds),
                      formatDouble(tg / seeds), formatDouble(qd / seeds),
                      formatDouble(td / seeds)});
    }
    table.print();
    return 0;
}
