/**
 * @file
 * Regenerates Fig. 23: QAOA benchmarks. Gate count and depth of the
 * 2QAN proxy and Tetris (bridging + qubit reuse), normalized to
 * Paulihedral; five random graph instances per benchmark, averaged.
 * All (instance, pipeline) pairs compile as one engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 23: QAOA (normalized to Paulihedral; lower is "
                "better)",
                "Paper: Tetris averages -66.5% depth / -60.6% gates "
                "vs PH and beats 2QAN by 15-20%.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    const int seeds = quickMode() ? 2 : 5;

    const size_t stacks = 3; // ph, 2qan, qaoa-bridge
    std::vector<CompileJob> jobs;
    for (const auto &spec : qaoaBenchmarks()) {
        for (int s = 0; s < seeds; ++s) {
            Graph g = buildQaoaGraph(spec, 100 + s);
            auto blocks = buildQaoaCostBlocks(g, 0.35);
            std::string base =
                spec.name + "/s=" + std::to_string(s);
            jobs.push_back(makeJob(base + "/ph", blocks, hw,
                                   makePaulihedralPipeline()));
            jobs.push_back(makeJob(base + "/2qan", blocks, hw,
                                   makeQaoa2qanPipeline()));
            jobs.push_back(makeJob(base + "/tetris",
                                   std::move(blocks), hw,
                                   makeQaoaBridgePipeline()));
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Bench", "2QAN/PH gates", "Tetris/PH gates",
                        "2QAN/PH depth", "Tetris/PH depth"});
    size_t next = 0;
    for (const auto &spec : qaoaBenchmarks()) {
        double qg = 0, tg = 0, qd = 0, td = 0;
        for (int s = 0; s < seeds; ++s) {
            const CompileStats &ph = records[next].second->stats;
            const CompileStats &qan =
                records[next + 1].second->stats;
            const CompileStats &tet =
                records[next + 2].second->stats;
            next += stacks;
            qg += static_cast<double>(qan.cnotCount) / ph.cnotCount;
            tg += static_cast<double>(tet.cnotCount) / ph.cnotCount;
            qd += static_cast<double>(qan.depth) / ph.depth;
            td += static_cast<double>(tet.depth) / ph.depth;
        }
        table.addRow({spec.name, formatDouble(qg / seeds),
                      formatDouble(tg / seeds), formatDouble(qd / seeds),
                      formatDouble(td / seeds)});
    }
    table.print();
    writeBenchJson("fig23", records, engine);
    return 0;
}
