/**
 * @file
 * tetris_client: command-line client for a running tetrisd.
 *
 * Connects over TCP or a Unix socket, submits a synthetic UCC-style
 * workload through the frame protocol, and prints one line per
 * result (job key, verify verdict, gate counts, server-side
 * latency). The artifact in each Result frame is a complete `.tca`
 * image and is re-decoded client-side, so a passing run also proves
 * the wire round-trip bit-exact.
 *
 *   tetris_client --port N [options]
 *   tetris_client --unix PATH [options]
 *
 *   --jobs M       programs to submit on this connection (default 4)
 *   --qubits Q     synthetic program width = device width (default 8)
 *   --seed S       base RNG seed; job j uses S + (j mod --distinct)
 *   --distinct D   distinct programs in the batch (default = jobs;
 *                  lower to exercise the server's cache dedup)
 *   --pipeline ID  registered pipeline id (default: server default)
 *   --name NAME    request-name prefix shown in server metrics
 *   --ping         liveness probe only
 *   --stats        print the server's /metrics snapshot and exit
 *
 * Streaming mode replaces the synthetic batch with a program file:
 *
 *   --file PATH    stream an OpenQASM 2 (.qasm) or Pauli-list program
 *                  through the server in windowed chunks; chunk N+1's
 *                  submit carries chunk N's final layout as its seed
 *                  (protocol v2), exactly like the in-process
 *                  StreamCompiler
 *   --window N     blocks per chunk (default: TETRIS_STREAM_WINDOW
 *                  or 256)
 *
 * Exit status: 0 when every submission returned a Result with
 * verify != fail, 1 otherwise.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS

#include <chrono>
#include <memory>
#include <vector>

#include <fstream>

#include "bench_util.hh"
#include "chem/uccsd.hh"
#include "frontend/stream_compiler.hh"
#include "hardware/topologies.hh"
#include "serve/client.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s (--port N | --unix PATH) [--jobs M] [--qubits Q]"
        " [--seed S] [--distinct D] [--pipeline ID] [--name NAME]"
        " [--file PATH] [--window N] [--ping] [--stats]\n",
        argv0);
    return 2;
}

const char *
verifyName(tetris::serve::WireVerify v)
{
    switch (v) {
    case tetris::serve::WireVerify::Pass:
        return "pass";
    case tetris::serve::WireVerify::Fail:
        return "FAIL";
    case tetris::serve::WireVerify::Skipped:
        return "skipped";
    default:
        return "not-run";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tetris;
    using Clock = std::chrono::steady_clock;

    int port = -1;
    std::string unix_path;
    int jobs = 4;
    int qubits = 8;
    uint64_t seed = 1;
    int distinct = 0;
    std::string pipeline_id;
    std::string name_prefix = "client";
    std::string file_path;
    int window = 0; // 0 = resolveStreamWindow (env or 256)
    bool ping_only = false;
    bool stats_only = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--port" && (v = next()))
            port = std::atoi(v);
        else if (arg == "--unix" && (v = next()))
            unix_path = v;
        else if (arg == "--jobs" && (v = next()))
            jobs = std::atoi(v);
        else if (arg == "--qubits" && (v = next()))
            qubits = std::atoi(v);
        else if (arg == "--seed" && (v = next()))
            seed = std::strtoull(v, nullptr, 10);
        else if (arg == "--distinct" && (v = next()))
            distinct = std::atoi(v);
        else if (arg == "--pipeline" && (v = next()))
            pipeline_id = v;
        else if (arg == "--name" && (v = next()))
            name_prefix = v;
        else if (arg == "--file" && (v = next()))
            file_path = v;
        else if (arg == "--window" && (v = next()))
            window = std::atoi(v);
        else if (arg == "--ping")
            ping_only = true;
        else if (arg == "--stats")
            stats_only = true;
        else
            return usage(argv[0]);
    }
    if ((port < 0 && unix_path.empty()) || jobs < 1 || qubits < 1)
        return usage(argv[0]);
    if (distinct < 1)
        distinct = jobs;

    std::string err;
    std::unique_ptr<serve::ServeClient> client =
        unix_path.empty()
            ? serve::ServeClient::connectTcp(port, err)
            : serve::ServeClient::connectUnix(unix_path, err);
    if (!client) {
        std::fprintf(stderr, "tetris_client: connect failed: %s\n",
                     err.c_str());
        return 1;
    }

    if (ping_only) {
        if (!client->ping()) {
            std::fprintf(stderr, "tetris_client: ping failed\n");
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }
    if (stats_only) {
        std::string text;
        if (!client->statsText(text)) {
            std::fprintf(stderr, "tetris_client: stats failed\n");
            return 1;
        }
        std::fputs(text.c_str(), stdout);
        return 0;
    }

    if (!file_path.empty()) {
        using namespace tetris::frontend;
        std::ifstream in(file_path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "tetris_client: cannot open %s\n",
                         file_path.c_str());
            return 1;
        }
        auto src = makeBlockSource(in, SourceFormat::Auto, file_path);
        const int win = resolveStreamWindow(window);

        // The wire's one-width rule: strings are exactly device
        // wide, so the device is built from the program width once
        // the first chunk reveals it.
        std::unique_ptr<CouplingGraph> hw;
        std::vector<int> seed; // chunk 0: identity
        bool all_ok = true;
        size_t chunk_index = 0;
        uint64_t total_blocks = 0;
        while (true) {
            std::vector<PauliBlock> chunk;
            PauliBlock b;
            while (static_cast<int>(chunk.size()) < win) {
                BlockSource::Status s = src->next(b);
                if (s == BlockSource::Status::Block) {
                    chunk.push_back(std::move(b));
                } else if (s == BlockSource::Status::End) {
                    break;
                } else {
                    std::fprintf(stderr,
                                 "tetris_client: parse error: %s\n",
                                 src->error().toText().c_str());
                    return 1;
                }
            }
            if (chunk.empty())
                break;
            if (!hw)
                hw = std::make_unique<CouplingGraph>(
                    lineTopology(src->numQubits()));

            serve::SubmitRequest req = serve::makeSubmitRequest(
                name_prefix + "#" + std::to_string(chunk_index),
                pipeline_id, chunk, *hw, seed);
            serve::ServeClient::Response resp;
            if (!client->submit(req, resp)) {
                std::fprintf(stderr,
                             "tetris_client: chunk %zu transport "
                             "error: %s (%s)\n",
                             chunk_index, resp.errorCode.c_str(),
                             resp.errorDetail.c_str());
                return 1;
            }
            if (!resp.ok) {
                std::fprintf(stderr,
                             "tetris_client: chunk %zu rejected: "
                             "%s (%s)\n",
                             chunk_index, resp.errorCode.c_str(),
                             resp.errorDetail.c_str());
                return 1;
            }
            std::printf("chunk %3zu  key=%016llx  verify=%-7s  "
                        "blocks=%zu  cnots=%zu  server=%.1fms\n",
                        chunk_index,
                        static_cast<unsigned long long>(resp.jobKey),
                        verifyName(resp.verify), chunk.size(),
                        resp.result.stats.cnotCount, resp.serverMs);
            if (resp.verify == serve::WireVerify::Fail)
                all_ok = false;
            seed = resp.result.finalLayout.toPhysical();
            total_blocks += chunk.size();
            ++chunk_index;
        }
        std::printf("streamed %zu chunks (%llu blocks, %llu "
                    "instructions) from %s\n",
                    chunk_index,
                    static_cast<unsigned long long>(total_blocks),
                    static_cast<unsigned long long>(
                        src->instructionsRead()),
                    file_path.c_str());
        return all_ok ? 0 : 1;
    }

    const CouplingGraph hw = lineTopology(qubits);
    bool all_ok = true;
    for (int j = 0; j < jobs; ++j) {
        const uint64_t job_seed =
            seed + static_cast<uint64_t>(j % distinct);
        const std::vector<PauliBlock> blocks =
            buildSyntheticUcc(qubits, job_seed);
        serve::SubmitRequest req = serve::makeSubmitRequest(
            name_prefix + "-" + std::to_string(j), pipeline_id,
            blocks, hw);

        const auto t0 = Clock::now();
        serve::ServeClient::Response resp;
        const bool transport_ok = client->submit(req, resp);
        const double rtt_ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count();
        if (!transport_ok) {
            std::fprintf(stderr,
                         "tetris_client: job %d transport error: "
                         "%s (%s)\n",
                         j, resp.errorCode.c_str(),
                         resp.errorDetail.c_str());
            return 1;
        }
        if (!resp.ok) {
            std::fprintf(stderr,
                         "tetris_client: job %d rejected: %s (%s)\n",
                         j, resp.errorCode.c_str(),
                         resp.errorDetail.c_str());
            all_ok = false;
            continue;
        }
        const CompileStats &s = resp.result.stats;
        std::printf("job %2d  key=%016llx  verify=%-7s  cnots=%zu  "
                    "depth=%zu  server=%.1fms  rtt=%.1fms\n",
                    j, static_cast<unsigned long long>(resp.jobKey),
                    verifyName(resp.verify), s.cnotCount, s.depth,
                    resp.serverMs, rtt_ms);
        if (resp.verify == serve::WireVerify::Fail)
            all_ok = false;
    }
    return all_ok ? 0 : 1;
}

#else // !TETRIS_HAVE_SOCKETS

int
main()
{
    std::fprintf(stderr, "tetris_client: sockets unavailable on "
                         "this platform\n");
    return 1;
}

#endif // TETRIS_HAVE_SOCKETS
