/**
 * @file
 * Regenerates Fig. 18: total CNOT gate breakdown (logical CNOTs vs
 * SWAP-induced CNOTs) for PH, Tetris, and routed max-cancel, with
 * the Tetris-over-PH improvement, on JW, BK and synthetic suites.
 */

#include <cstdio>

#include "baselines/max_cancel.hh"
#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

void
addRows(TablePrinter &table, const std::string &group,
        const std::string &name, const std::vector<PauliBlock> &blocks,
        const CouplingGraph &hw)
{
    CompileResult ph = compilePaulihedral(blocks, hw);
    CompileResult tet = compileTetris(blocks, hw);
    CompileResult max = compileMaxCancel(blocks, hw);

    table.addRow({
        group,
        name,
        formatCount(ph.stats.cnotCount),
        formatCount(ph.stats.swapCnots),
        formatCount(tet.stats.cnotCount),
        formatCount(tet.stats.swapCnots),
        formatCount(max.stats.cnotCount),
        formatCount(max.stats.swapCnots),
        formatPercent(-tetris::bench::improvement(
            ph.stats.cnotCount, tet.stats.cnotCount)),
    });
}

} // namespace

int
main()
{
    printBanner("Fig. 18: total CNOT breakdown (x = logical + swap)",
                "Paper improvements: JW -15.4..-41.3%, BK "
                "-10.2..-28.2%, synthetic -18.5..-28.1%.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Group", "Bench", "PH", "PH_S", "Tetris",
                        "Tetris_S", "max", "max_S", "Improv"});

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules())
            addRows(table, enc, spec.name, buildMolecule(spec, enc), hw);
    }
    std::vector<int> ucc_sizes = {10, 15, 20, 25, 30, 35};
    if (quickMode())
        ucc_sizes = {10, 15};
    for (int n : ucc_sizes) {
        addRows(table, "Synthetic", "UCC-" + std::to_string(n),
                buildSyntheticUcc(n, 1000 + n), hw);
    }

    table.print();
    return 0;
}
