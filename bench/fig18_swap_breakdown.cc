/**
 * @file
 * Regenerates Fig. 18: total CNOT gate breakdown (logical CNOTs vs
 * SWAP-induced CNOTs) for PH, Tetris, and routed max-cancel, with
 * the Tetris-over-PH improvement, on JW, BK and synthetic suites.
 * The 3 stacks x all workloads run as one engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 18: total CNOT breakdown (x = logical + swap)",
                "Paper improvements: JW -15.4..-41.3%, BK "
                "-10.2..-28.2%, synthetic -18.5..-28.1%.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    struct RowSpec
    {
        std::string group;
        std::string name;
    };
    const size_t stacks = 3; // ph, tetris, max-cancel
    std::vector<RowSpec> rows;
    std::vector<CompileJob> jobs;
    auto addWorkload = [&](const std::string &group,
                           const std::string &name,
                           std::vector<PauliBlock> blocks) {
        rows.push_back({group, name});
        jobs.push_back(makeJob(name + "/" + group + "/ph", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(name + "/" + group + "/tetris", blocks,
                               hw, makeTetrisPipeline()));
        jobs.push_back(makeJob(name + "/" + group + "/max-cancel",
                               std::move(blocks), hw,
                               makeMaxCancelPipeline()));
    };

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules())
            addWorkload(enc, spec.name, buildMolecule(spec, enc));
    }
    std::vector<int> ucc_sizes = {10, 15, 20, 25, 30, 35};
    if (quickMode())
        ucc_sizes = {10, 15};
    for (int n : ucc_sizes) {
        addWorkload("Synthetic", "UCC-" + std::to_string(n),
                    buildSyntheticUcc(n, 1000 + n));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Group", "Bench", "PH", "PH_S", "Tetris",
                        "Tetris_S", "max", "max_S", "Improv"});
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto *r = &records[stacks * i];
        const CompileStats &ph = r[0].second->stats;
        const CompileStats &tet = r[1].second->stats;
        const CompileStats &max = r[2].second->stats;
        table.addRow({
            rows[i].group,
            rows[i].name,
            formatCount(ph.cnotCount),
            formatCount(ph.swapCnots),
            formatCount(tet.cnotCount),
            formatCount(tet.swapCnots),
            formatCount(max.cnotCount),
            formatCount(max.swapCnots),
            formatPercent(-improvement(ph.cnotCount, tet.cnotCount)),
        });
    }
    table.print();
    writeBenchJson("fig18", records, engine);
    return 0;
}
