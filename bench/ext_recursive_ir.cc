/**
 * @file
 * Extension ablation (beyond the paper's evaluation): the effect of
 * within-block string reordering -- the enabling step of
 * Tetris-IR-recursive, which the paper lists as future work -- on
 * the final CNOT count, for both encoders. Valid for UCCSD blocks
 * because all strings of an excitation block mutually commute.
 * Both variants compile as one parallel engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Extension: Tetris-IR-recursive string reordering",
                "CNOT counts with and without greedy consecutive-"
                "similarity reordering inside each block.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    TetrisOptions no_reorder;
    no_reorder.reorderStringsInBlock = false;
    TetrisOptions reorder;
    reorder.reorderStringsInBlock = true;

    const size_t stacks = 2;
    std::vector<CompileJob> jobs;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            std::string base = std::string(enc) + "/" + spec.name;
            jobs.push_back(makeJob(base + "/tetris", blocks, hw,
                                   makeTetrisPipeline(no_reorder)));
            jobs.push_back(makeJob(base + "/tetris+reorder",
                                   std::move(blocks), hw,
                                   makeTetrisPipeline(reorder)));
        }
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Encoder", "Bench", "Tetris", "Tetris+reorder",
                        "Delta"});
    size_t row = 0;
    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            const auto *r = &records[stacks * row++];
            const CompileStats &base = r[0].second->stats;
            const CompileStats &reordered = r[1].second->stats;
            table.addRow({enc, spec.name,
                          formatCount(base.cnotCount),
                          formatCount(reordered.cnotCount),
                          formatPercent(-improvement(
                              base.cnotCount, reordered.cnotCount))});
        }
    }
    table.print();
    writeBenchJson("ext_recursive", records, engine);
    return 0;
}
