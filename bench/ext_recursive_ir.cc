/**
 * @file
 * Extension ablation (beyond the paper's evaluation): the effect of
 * within-block string reordering -- the enabling step of
 * Tetris-IR-recursive, which the paper lists as future work -- on
 * the final CNOT count, for both encoders. Valid for UCCSD blocks
 * because all strings of an excitation block mutually commute.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Extension: Tetris-IR-recursive string reordering",
                "CNOT counts with and without greedy consecutive-"
                "similarity reordering inside each block.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Encoder", "Bench", "Tetris", "Tetris+reorder",
                        "Delta"});

    for (const char *enc : {"jw", "bk"}) {
        for (const auto &spec : benchMolecules()) {
            auto blocks = buildMolecule(spec, enc);
            TetrisOptions base_opts;
            base_opts.reorderStringsInBlock = false;
            CompileResult base = compileTetris(blocks, hw, base_opts);
            TetrisOptions opts;
            opts.reorderStringsInBlock = true;
            CompileResult reordered = compileTetris(blocks, hw, opts);
            table.addRow({enc, spec.name,
                          formatCount(base.stats.cnotCount),
                          formatCount(reordered.stats.cnotCount),
                          formatPercent(-improvement(
                              base.stats.cnotCount,
                              reordered.stats.cnotCount))});
        }
    }
    table.print();
    return 0;
}
