/**
 * @file
 * Regenerates Fig. 15: (a) the two T|Ket> proxy flavors (lookahead
 * O2 routing vs greedy Qiskit-O3-style routing); (b) the breakdown
 * of SWAP-induced versus logical CNOTs for PCOAST, PH, and Tetris.
 */

#include <cstdio>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    CouplingGraph hw = ibmIthaca65();
    auto mols = benchMolecules(2);
    if (mols.size() > 4)
        mols.resize(4);

    printBanner("Fig. 15a: T|Ket> + TKet-O2 vs T|Ket> + Qiskit-O3",
                "Paper: the O2 flavor wins in all cases.");
    TablePrinter a({"Bench", "TKet+O2 CNOT", "TKet+QiskitO3 CNOT"});
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        CompileResult o2 = compileTketProxy(blocks, hw, TketFlavor::O2);
        CompileResult o3 =
            compileTketProxy(blocks, hw, TketFlavor::QiskitO3);
        a.addRow({spec.name, formatCount(o2.stats.cnotCount),
                  formatCount(o3.stats.cnotCount)});
    }
    a.print();

    printBanner("Fig. 15b: logical vs SWAP-induced CNOT breakdown",
                "Paper: PCOAST has the lowest logical count but by far "
                "the largest SWAP-induced CNOT fraction.");
    TablePrinter b({"Bench", "PCOAST logical", "PCOAST swaps",
                    "PH logical", "PH swaps", "Tetris logical",
                    "Tetris swaps"});
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        CompileResult pcoast = compilePcoastProxy(blocks, hw);
        CompileResult ph = compilePaulihedral(blocks, hw);
        CompileResult tet = compileTetris(blocks, hw);
        b.addRow({spec.name, formatCount(pcoast.stats.logicalCnots),
                  formatCount(pcoast.stats.swapCnots),
                  formatCount(ph.stats.logicalCnots),
                  formatCount(ph.stats.swapCnots),
                  formatCount(tet.stats.logicalCnots),
                  formatCount(tet.stats.swapCnots)});
    }
    b.print();
    return 0;
}
