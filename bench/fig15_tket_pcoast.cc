/**
 * @file
 * Regenerates Fig. 15: (a) the two T|Ket> proxy flavors (lookahead
 * O2 routing vs greedy Qiskit-O3-style routing); (b) the breakdown
 * of SWAP-induced versus logical CNOTs for PCOAST, PH, and Tetris.
 * Both panels compile as one parallel engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();
    auto mols = benchMolecules(2);
    if (mols.size() > 4)
        mols.resize(4);

    // Per molecule: tket-o2, tket-o3 (panel a); pcoast, ph, tetris
    // (panel b).
    const size_t stacks = 5;
    std::vector<CompileJob> jobs;
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        jobs.push_back(makeJob(spec.name + "/tket-o2", blocks, hw,
                               makeTketPipeline(TketFlavor::O2)));
        jobs.push_back(makeJob(spec.name + "/tket-o3", blocks, hw,
                               makeTketPipeline(TketFlavor::QiskitO3)));
        jobs.push_back(makeJob(spec.name + "/pcoast", blocks, hw,
                               makePcoastPipeline()));
        jobs.push_back(makeJob(spec.name + "/ph", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(spec.name + "/tetris", std::move(blocks),
                               hw, makeTetrisPipeline()));
    }

    auto records = runJobs(engine, std::move(jobs));

    printBanner("Fig. 15a: T|Ket> + TKet-O2 vs T|Ket> + Qiskit-O3",
                "Paper: the O2 flavor wins in all cases.");
    TablePrinter a({"Bench", "TKet+O2 CNOT", "TKet+QiskitO3 CNOT"});
    for (size_t i = 0; i < mols.size(); ++i) {
        const auto *r = &records[stacks * i];
        a.addRow({mols[i].name,
                  formatCount(r[0].second->stats.cnotCount),
                  formatCount(r[1].second->stats.cnotCount)});
    }
    a.print();

    printBanner("Fig. 15b: logical vs SWAP-induced CNOT breakdown",
                "Paper: PCOAST has the lowest logical count but by far "
                "the largest SWAP-induced CNOT fraction.");
    TablePrinter b({"Bench", "PCOAST logical", "PCOAST swaps",
                    "PH logical", "PH swaps", "Tetris logical",
                    "Tetris swaps"});
    for (size_t i = 0; i < mols.size(); ++i) {
        const auto *r = &records[stacks * i];
        b.addRow({mols[i].name,
                  formatCount(r[2].second->stats.logicalCnots),
                  formatCount(r[2].second->stats.swapCnots),
                  formatCount(r[3].second->stats.logicalCnots),
                  formatCount(r[3].second->stats.swapCnots),
                  formatCount(r[4].second->stats.logicalCnots),
                  formatCount(r[4].second->stats.swapCnots)});
    }
    b.print();
    writeBenchJson("fig15", records, engine);
    return 0;
}
