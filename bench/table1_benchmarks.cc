/**
 * @file
 * Regenerates Table I: benchmark characteristics (#qubits, #Pauli,
 * #CNOT, #1Q) for the molecule suite (JW), the synthetic UCC-n
 * suite, and the QAOA graphs. Paper values printed alongside.
 *
 * The #CNOT column is the "original circuit" -- the unrouted naive
 * per-string chain synthesis -- produced by the "naive" pipeline
 * (route = false) through the batch engine, which also exercises the
 * engine's live progress reporting on this long workload-building
 * sweep and drops the BENCH_table1.json trajectory.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"
#include "qaoa/qaoa.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct PaperRow
{
    size_t pauli, cnot, one_q;
};

/** "measured (paper)" cell text. */
std::string
withPaper(size_t measured, size_t paper)
{
    return std::to_string(measured) + " (" + std::to_string(paper) +
           ")";
}

} // namespace

int
main()
{
    printBanner("Table I: Benchmarks",
                "Molecules use the JW encoder (blocked spin order); "
                "paper values in parentheses.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    NaiveOptions logical_only;
    logical_only.route = false;
    auto naive = makeNaivePipeline(logical_only);

    struct Row
    {
        std::string type;
        std::string name;
        int qubits;
        size_t pauli;
        size_t one_q;
        PaperRow paper;
    };
    std::vector<Row> rows;
    std::vector<CompileJob> jobs;
    auto addWorkload = [&](const std::string &type,
                           const std::string &name, int qubits,
                           size_t pauli, size_t one_q,
                           const PaperRow &paper,
                           std::vector<PauliBlock> blocks) {
        rows.push_back({type, name, qubits, pauli, one_q, paper});
        jobs.push_back(
            makeJob(name + "/naive", std::move(blocks), hw, naive));
    };

    const std::vector<PaperRow> mol_paper = {
        {640, 8064, 4992},     {1488, 21072, 11712},
        {4240, 73680, 33600},  {8400, 173264, 66752},
        {17280, 440960, 137600}, {20944, 568656, 166848},
    };
    const auto &mols = moleculeBenchmarks();
    for (size_t i = 0; i < mols.size(); ++i) {
        auto blocks = buildMolecule(mols[i], "jw");
        // Counts hoisted out: argument evaluation order is
        // unspecified relative to the move of `blocks`.
        size_t pauli = totalStrings(blocks);
        size_t one_q = naiveOneQubitCount(blocks);
        addWorkload("Molecule", mols[i].name, mols[i].numSpinOrbitals,
                    pauli, one_q, mol_paper[i], std::move(blocks));
    }

    const std::vector<PaperRow> ucc_paper = {
        {800, 8976, 6400},    {1800, 27200, 14400},
        {3200, 59712, 25600}, {5000, 117376, 40000},
        {7200, 193984, 57600}, {9800, 304976, 78400},
    };
    const int ucc_sizes[] = {10, 15, 20, 25, 30, 35};
    for (size_t i = 0; i < 6; ++i) {
        int n = ucc_sizes[i];
        auto blocks = buildSyntheticUcc(n, 1000 + n);
        size_t pauli = totalStrings(blocks);
        size_t one_q = naiveOneQubitCount(blocks);
        addWorkload("UCCSD", "UCC-" + std::to_string(n), n, pauli,
                    one_q, ucc_paper[i], std::move(blocks));
    }

    const std::vector<PaperRow> qaoa_paper = {
        {25, 50, 57}, {31, 62, 67}, {40, 80, 80},
        {24, 48, 56}, {27, 54, 63}, {30, 60, 70},
    };
    const auto &specs = qaoaBenchmarks();
    for (size_t i = 0; i < specs.size(); ++i) {
        Graph g = buildQaoaGraph(specs[i], 1);
        auto blocks = buildQaoaCostBlocks(g, 0.4);
        // Table I 1Q accounting: one RZ per edge + H and RX layers.
        size_t one_q = g.numEdges() + 2 * g.numNodes();
        size_t pauli = blocks.size();
        addWorkload("QAOA", specs[i].name, specs[i].numNodes, pauli,
                    one_q, qaoa_paper[i], std::move(blocks));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Type", "Bench", "#qubits", "#Pauli(paper)",
                        "#CNOT(paper)", "#1Q(paper)"});
    for (size_t i = 0; i < rows.size(); ++i) {
        // Unrouted naive: cnotCount == the paper's original CNOTs.
        size_t cnots = records[i].second->stats.cnotCount;
        table.addRow({rows[i].type, rows[i].name,
                      std::to_string(rows[i].qubits),
                      withPaper(rows[i].pauli, rows[i].paper.pauli),
                      withPaper(cnots, rows[i].paper.cnot),
                      withPaper(rows[i].one_q, rows[i].paper.one_q)});
    }
    table.print();
    writeBenchJson("table1", records, engine);
    return 0;
}
