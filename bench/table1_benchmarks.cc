/**
 * @file
 * Regenerates Table I: benchmark characteristics (#qubits, #Pauli,
 * #CNOT, #1Q) for the molecule suite (JW), the synthetic UCC-n
 * suite, and the QAOA graphs. Paper values printed alongside.
 */

#include <cstdio>

#include "bench_util.hh"
#include "qaoa/qaoa.hh"

using namespace tetris;
using namespace tetris::bench;

namespace
{

struct PaperRow
{
    size_t pauli, cnot, one_q;
};

} // namespace

int
main()
{
    printBanner("Table I: Benchmarks",
                "Molecules use the JW encoder (blocked spin order); "
                "paper values in parentheses.");

    TablePrinter table({"Type", "Bench", "#qubits", "#Pauli(paper)",
                        "#CNOT(paper)", "#1Q(paper)"});

    const std::vector<PaperRow> mol_paper = {
        {640, 8064, 4992},     {1488, 21072, 11712},
        {4240, 73680, 33600},  {8400, 173264, 66752},
        {17280, 440960, 137600}, {20944, 568656, 166848},
    };
    const auto &mols = moleculeBenchmarks();
    for (size_t i = 0; i < mols.size(); ++i) {
        auto blocks = buildMolecule(mols[i], "jw");
        char pauli[64], cnot[64], one_q[64];
        std::snprintf(pauli, sizeof(pauli), "%zu (%zu)",
                      totalStrings(blocks), mol_paper[i].pauli);
        std::snprintf(cnot, sizeof(cnot), "%zu (%zu)",
                      naiveCnotCount(blocks), mol_paper[i].cnot);
        std::snprintf(one_q, sizeof(one_q), "%zu (%zu)",
                      naiveOneQubitCount(blocks), mol_paper[i].one_q);
        table.addRow({"Molecule", mols[i].name,
                      std::to_string(mols[i].numSpinOrbitals), pauli,
                      cnot, one_q});
    }

    const std::vector<PaperRow> ucc_paper = {
        {800, 8976, 6400},    {1800, 27200, 14400},
        {3200, 59712, 25600}, {5000, 117376, 40000},
        {7200, 193984, 57600}, {9800, 304976, 78400},
    };
    const int ucc_sizes[] = {10, 15, 20, 25, 30, 35};
    for (size_t i = 0; i < 6; ++i) {
        int n = ucc_sizes[i];
        auto blocks = buildSyntheticUcc(n, 1000 + n);
        char pauli[64], cnot[64], one_q[64];
        std::snprintf(pauli, sizeof(pauli), "%zu (%zu)",
                      totalStrings(blocks), ucc_paper[i].pauli);
        std::snprintf(cnot, sizeof(cnot), "%zu (%zu)",
                      naiveCnotCount(blocks), ucc_paper[i].cnot);
        std::snprintf(one_q, sizeof(one_q), "%zu (%zu)",
                      naiveOneQubitCount(blocks), ucc_paper[i].one_q);
        table.addRow({"UCCSD", "UCC-" + std::to_string(n),
                      std::to_string(n), pauli, cnot, one_q});
    }

    const std::vector<PaperRow> qaoa_paper = {
        {25, 50, 57}, {31, 62, 67}, {40, 80, 80},
        {24, 48, 56}, {27, 54, 63}, {30, 60, 70},
    };
    const auto &specs = qaoaBenchmarks();
    for (size_t i = 0; i < specs.size(); ++i) {
        Graph g = buildQaoaGraph(specs[i], 1);
        auto blocks = buildQaoaCostBlocks(g, 0.4);
        // Table I 1Q accounting: one RZ per edge + H and RX layers.
        size_t one_q = g.numEdges() + 2 * g.numNodes();
        char pauli[64], cnot[64], oq[64];
        std::snprintf(pauli, sizeof(pauli), "%zu (%zu)", blocks.size(),
                      qaoa_paper[i].pauli);
        std::snprintf(cnot, sizeof(cnot), "%zu (%zu)",
                      naiveCnotCount(blocks), qaoa_paper[i].cnot);
        std::snprintf(oq, sizeof(oq), "%zu (%zu)", one_q,
                      qaoa_paper[i].one_q);
        table.addRow({"QAOA", specs[i].name,
                      std::to_string(specs[i].numNodes), pauli, cnot,
                      oq});
    }

    table.print();
    return 0;
}
