/**
 * @file
 * Regenerates Fig. 14: CNOT gate count across full compiler stacks
 * -- T|Ket> proxy, PCOAST proxy, Paulihedral, Tetris with the
 * PH-style scheduler, and Tetris with the lookahead scheduler
 * (K=10) -- on LiH..MgH2 (JW, heavy-hex), mirroring the paper's
 * molecule subset (T|Ket> timed out beyond MgH2 in the paper).
 */

#include <cstdio>

#include "baselines/max_cancel.hh"
#include "baselines/naive.hh"
#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 14: compiler comparison (CNOT count, JW, heavy-hex)",
                "Expected ordering: TKet >> PCOAST > PH > Tetris > "
                "Tetris+lookahead.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Bench", "TKet", "PCOAST", "PH", "Tetris",
                        "Tetris+lookahead"});

    auto mols = benchMolecules(2);
    if (mols.size() > 4)
        mols.resize(4); // LiH..MgH2 as in the paper

    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");

        CompileResult tket = compileTketProxy(blocks, hw, TketFlavor::O2);
        CompileResult pcoast = compilePcoastProxy(blocks, hw);
        CompileResult ph = compilePaulihedral(blocks, hw);

        TetrisOptions ph_sched;
        ph_sched.scheduler = SchedulerKind::Lexicographic;
        CompileResult tet = compileTetris(blocks, hw, ph_sched);

        TetrisOptions look;
        look.scheduler = SchedulerKind::Lookahead;
        look.lookaheadK = 10;
        CompileResult tet_look = compileTetris(blocks, hw, look);

        table.addRow({spec.name, formatCount(tket.stats.cnotCount),
                      formatCount(pcoast.stats.cnotCount),
                      formatCount(ph.stats.cnotCount),
                      formatCount(tet.stats.cnotCount),
                      formatCount(tet_look.stats.cnotCount)});
    }
    table.print();
    return 0;
}
