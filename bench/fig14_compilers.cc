/**
 * @file
 * Regenerates Fig. 14: CNOT gate count across full compiler stacks
 * -- T|Ket> proxy, PCOAST proxy, Paulihedral, Tetris with the
 * PH-style scheduler, and Tetris with the lookahead scheduler
 * (K=10) -- on LiH..MgH2 (JW, heavy-hex), mirroring the paper's
 * molecule subset (T|Ket> timed out beyond MgH2 in the paper).
 * All five stacks per molecule run as one parallel engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 14: compiler comparison (CNOT count, JW, heavy-hex)",
                "Expected ordering: TKet >> PCOAST > PH > Tetris > "
                "Tetris+lookahead.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    auto mols = benchMolecules(2);
    if (mols.size() > 4)
        mols.resize(4); // LiH..MgH2 as in the paper

    TetrisOptions ph_sched;
    ph_sched.scheduler = SchedulerKind::Lexicographic;
    TetrisOptions look;
    look.scheduler = SchedulerKind::Lookahead;
    look.lookaheadK = 10;

    // Five stacks per molecule, in table-column order.
    const size_t stacks = 5;
    std::vector<CompileJob> jobs;
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        jobs.push_back(makeJob(spec.name + "/tket-o2", blocks, hw,
                               makeTketPipeline(TketFlavor::O2)));
        jobs.push_back(makeJob(spec.name + "/pcoast", blocks, hw,
                               makePcoastPipeline()));
        jobs.push_back(makeJob(spec.name + "/ph", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(spec.name + "/tetris-lex", blocks, hw,
                               makeTetrisPipeline(ph_sched)));
        jobs.push_back(makeJob(spec.name + "/tetris-lookahead",
                               std::move(blocks), hw,
                               makeTetrisPipeline(look)));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Bench", "TKet", "PCOAST", "PH", "Tetris",
                        "Tetris+lookahead"});
    for (size_t i = 0; i < mols.size(); ++i) {
        const auto *r = &records[stacks * i];
        table.addRow({mols[i].name,
                      formatCount(r[0].second->stats.cnotCount),
                      formatCount(r[1].second->stats.cnotCount),
                      formatCount(r[2].second->stats.cnotCount),
                      formatCount(r[3].second->stats.cnotCount),
                      formatCount(r[4].second->stats.cnotCount)});
    }
    table.print();
    writeBenchJson("fig14", records, engine);
    return 0;
}
