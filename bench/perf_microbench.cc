/**
 * @file
 * Caching-path performance microbenchmark -> BENCH_perf.json.
 *
 * Unlike the fig/table binaries this does not regenerate a paper
 * artifact; it measures the infrastructure the bench sweeps run on:
 *
 *  1. In-memory compile-cache hit throughput and lock-wait time
 *     across thread counts (1-64) and shard counts ({1, default,
 *     64}), on a hit-heavy workload — the access pattern of a warm
 *     sweep. This is the measurement behind the sharded-cache
 *     design: shards > 1 must beat the single-mutex configuration
 *     once >= 8 threads hammer the table.
 *  2. Packed bit-plane Pauli kernels (commutation, in-place product,
 *     tableau conjugation) against the byte-per-qubit reference in
 *     pauli_ref, at 16/64/256 qubits — the speedup claim behind the
 *     data-oriented PauliString representation, reported as a
 *     "pauli_kernels" section bench_diff.py trends.
 *  3. Persistent-store artifact load latency: cold (first load per
 *     key) vs warm (repeat loads) through the zero-copy mmap path,
 *     plus the buffered fallback (TETRIS_DISK_MMAP=0) for
 *     comparison.
 *  4. An engine-level cold/warm sweep against a private store: the
 *     warm run must recompile nothing (asserted by smoke.sh from the
 *     JSON) and serve every hit through the mmap path.
 *
 * TETRIS_BENCH_QUICK=1 shrinks every dimension for CI; the JSON
 * schema ("schema": "perf-v1") is understood by scripts/
 * bench_diff.py, which treats timing changes as warnings but
 * shard-count or semantics drift as failures.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench_util.hh"
#include "circuit/gate.hh"
#include "common/hash.hh"
#include "common/json.hh"
#include "common/rng.hh"
#include "engine/compile_cache.hh"
#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "engine/trace.hh"
#include "obs/event_log.hh"
#include "obs/obs_server.hh"
#include "pauli/pauli_ref.hh"
#include "serialize/mmap_file.hh"
#include "verify/pauli_frame.hh"

namespace fs = std::filesystem;

using namespace tetris;
using namespace tetris::bench;

namespace
{

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Well-spread 64-bit keys, as Engine::jobKey would produce. */
uint64_t
keyAt(int i)
{
    return fnvMix(kFnvOffset, i);
}

// ---- 1. cache hit throughput ---------------------------------------

struct SweepRow
{
    int shards = 0;
    int threads = 0;
    uint64_t ops = 0;
    double seconds = 0.0;
    double opsPerSec = 0.0;
    uint64_t lockWaitNs = 0;
};

/**
 * Hammer one CompileCache configuration with a pure-hit workload:
 * every key is pre-published, so each operation is one lock-free
 * probe of the shard's published read view — the path a warm sweep's
 * deduplicated submissions take. No mutex is ever touched, so
 * lock_wait_ns must report exactly zero (smoke.sh asserts this).
 */
SweepRow
runCacheSweep(int shards, int threads, uint64_t ops_per_thread)
{
    constexpr int kKeys = 256;
    CompileCache cache(shards);
    auto dummy = std::make_shared<const CompileResult>();
    for (int k = 0; k < kKeys; ++k) {
        bool is_new = false;
        auto entry = cache.acquire(keyAt(k), is_new);
        if (is_new)
            entry->publish(dummy);
    }

    std::atomic<bool> go{false};
    std::atomic<uint64_t> misses{0};
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(threads));
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Per-thread stride so threads do not march in lockstep
            // over the same shard sequence.
            uint64_t local_misses = 0;
            for (uint64_t i = 0; i < ops_per_thread; ++i) {
                int k = static_cast<int>(
                    (i * 7 + static_cast<uint64_t>(t) * 13) % kKeys);
                bool is_new = true;
                cache.acquire(keyAt(k), is_new);
                if (is_new)
                    ++local_misses;
            }
            misses.fetch_add(local_misses);
        });
    }

    auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto &w : workers)
        w.join();
    double elapsed = secondsSince(t0);

    if (misses.load() != 0)
        std::fprintf(stderr,
                     "warn: hit-only sweep observed %llu misses\n",
                     static_cast<unsigned long long>(misses.load()));

    SweepRow row;
    row.shards = cache.shardCount();
    row.threads = threads;
    row.ops = ops_per_thread * static_cast<uint64_t>(threads);
    row.seconds = elapsed;
    row.opsPerSec =
        elapsed > 0.0 ? static_cast<double>(row.ops) / elapsed : 0.0;
    row.lockWaitNs = cache.lockWaitNs();
    return row;
}

// ---- 2. packed vs byte-wise Pauli kernels --------------------------

/** Defeats dead-code elimination of the benchmark loops. */
volatile uint64_t g_pauli_sink = 0;

/** ns/op of `body` (which returns a value folded into the sink). */
template <typename F>
double
nsPerOp(uint64_t iters, F &&body)
{
    uint64_t acc = 0;
    auto t0 = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < iters; ++i)
        acc += body(i);
    double ns = secondsSince(t0) * 1e9 / static_cast<double>(iters);
    g_pauli_sink = acc;
    return ns;
}

pauli_ref::ByteString
randomByteString(Rng &rng, size_t n)
{
    static constexpr PauliOp kOps[4] = {PauliOp::I, PauliOp::X,
                                        PauliOp::Y, PauliOp::Z};
    pauli_ref::ByteString s(n);
    for (size_t q = 0; q < n; ++q)
        s[q] = kOps[rng.uniformInt(0, 3)];
    return s;
}

struct KernelRow
{
    const char *kernel;
    int qubits;
    uint64_t iters;
    double packedNs = 0.0;
    double byteNs = 0.0;

    double speedup() const
    {
        return packedNs > 0.0 ? byteNs / packedNs : 0.0;
    }
};

/**
 * Time the three hot Pauli kernels — commutation check, in-place
 * string product, and tableau (frame) conjugation — on the packed
 * bit-plane representation against the byte-per-qubit reference, on
 * identical random inputs. This is the measurement behind the
 * data-oriented repacking: the packed kernels must not merely win,
 * they must win by the word-parallelism factor once strings span
 * multiple words.
 */
std::vector<KernelRow>
runPauliKernels(bool quick)
{
    constexpr size_t kPairs = 64;
    const uint64_t iters = quick ? 50000 : 500000;
    const int conj_gates = 256;
    const uint64_t conj_rounds = quick ? 50 : 400;

    std::vector<KernelRow> rows;
    for (int qubits : {16, 64, 256}) {
        Rng rng(0x7e7215u + static_cast<uint64_t>(qubits));
        const size_t n = static_cast<size_t>(qubits);
        std::vector<pauli_ref::ByteString> byte_a, byte_b;
        std::vector<PauliString> packed_a, packed_b;
        for (size_t p = 0; p < kPairs; ++p) {
            byte_a.push_back(randomByteString(rng, n));
            byte_b.push_back(randomByteString(rng, n));
            packed_a.emplace_back(byte_a.back());
            packed_b.emplace_back(byte_b.back());
        }

        KernelRow commute{"commute", qubits, iters};
        commute.packedNs = nsPerOp(iters, [&](uint64_t i) {
            const size_t p = i % kPairs;
            return static_cast<uint64_t>(
                packed_a[p].commutesWith(packed_b[p]));
        });
        commute.byteNs = nsPerOp(iters, [&](uint64_t i) {
            const size_t p = i % kPairs;
            return static_cast<uint64_t>(
                pauli_ref::commutes(byte_a[p], byte_b[p]));
        });
        rows.push_back(commute);

        // In-place products so both sides measure the kernel loop,
        // not the allocator. Repeated application keeps the scratch
        // operands valid Pauli strings, so the work never degrades.
        KernelRow product{"product", qubits, iters};
        std::vector<PauliString> packed_scratch = packed_b;
        product.packedNs = nsPerOp(iters, [&](uint64_t i) {
            const size_t p = i % kPairs;
            return static_cast<uint64_t>(
                packed_scratch[p].mulLeft(packed_a[p]));
        });
        std::vector<pauli_ref::ByteString> byte_scratch = byte_b;
        product.byteNs = nsPerOp(iters, [&](uint64_t i) {
            const size_t p = i % kPairs;
            return static_cast<uint64_t>(
                pauli_ref::mulInto(byte_a[p], byte_scratch[p]));
        });
        rows.push_back(product);

        // Tableau conjugation: push one random Clifford sequence
        // through the packed PauliFrame and the byte-wise ByteFrame.
        std::vector<Gate> gates;
        gates.reserve(static_cast<size_t>(conj_gates));
        for (int g = 0; g < conj_gates; ++g) {
            const int q0 = rng.uniformInt(0, qubits - 1);
            switch (rng.uniformInt(0, 2)) {
              case 0:
                gates.push_back(Gate::h(q0));
                break;
              case 1:
                gates.push_back(Gate::s(q0));
                break;
              default: {
                int q1 = rng.uniformInt(0, qubits - 1);
                if (q1 == q0)
                    q1 = (q1 + 1) % qubits;
                gates.push_back(Gate::cx(q0, q1));
                break;
              }
            }
        }

        const uint64_t conj_ops =
            conj_rounds * static_cast<uint64_t>(conj_gates);
        KernelRow conj{"conjugate", qubits, conj_ops};
        PauliFrame frame(qubits);
        conj.packedNs = nsPerOp(conj_rounds, [&](uint64_t) {
                            uint64_t acc = 0;
                            for (const Gate &g : gates)
                                acc += static_cast<uint64_t>(
                                    frame.applyGate(g));
                            return acc;
                        }) /
                        static_cast<double>(conj_gates);
        pauli_ref::ByteFrame byte_frame(qubits);
        conj.byteNs = nsPerOp(conj_rounds, [&](uint64_t) {
                          uint64_t acc = 0;
                          for (const Gate &g : gates) {
                              if (g.kind == GateKind::H)
                                  byte_frame.applyH(g.q0);
                              else if (g.kind == GateKind::S)
                                  byte_frame.applyS(g.q0);
                              else
                                  byte_frame.applyCx(g.q0, g.q1);
                              ++acc;
                          }
                          return acc;
                      }) /
                      static_cast<double>(conj_gates);
        rows.push_back(conj);
    }
    return rows;
}

// ---- 3. artifact load latency --------------------------------------

struct LoadStats
{
    uint64_t loads = 0;
    double avgNs = 0.0;
};

LoadStats
timeLoads(const DiskCache &store, const std::vector<uint64_t> &keys,
          int rounds)
{
    LoadStats s;
    auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < rounds; ++r) {
        for (uint64_t key : keys) {
            auto result = store.load(key);
            if (result == nullptr)
                std::fprintf(stderr,
                             "warn: unexpected miss for key %llx\n",
                             static_cast<unsigned long long>(key));
            ++s.loads;
        }
    }
    double elapsed = secondsSince(t0);
    s.avgNs = s.loads > 0 ? elapsed * 1e9 / static_cast<double>(s.loads)
                          : 0.0;
    return s;
}

} // namespace

int
main()
{
    const bool quick = quickMode();
    printBanner("perf microbench",
                quick ? "caching-path throughput/latency (quick preset)"
                      : "caching-path throughput/latency (full preset)");

    JsonWriter w;
    w.beginObject();
    w.key("artifact").value("perf");
    w.key("schema").value("perf-v1");
    w.key("quickMode").value(quick);
    w.key("hardware_concurrency")
        .value(static_cast<uint64_t>(
            std::thread::hardware_concurrency()));

    // ---- 1. in-memory cache: shards x threads sweep ----------------
    const int default_shards = CompileCache::resolveShardCount(0);
    std::vector<int> shard_set{1};
    if (default_shards != 1 && default_shards != 64)
        shard_set.push_back(default_shards);
    shard_set.push_back(64);
    std::vector<int> thread_set =
        quick ? std::vector<int>{1, 2, 4, 8}
              : std::vector<int>{1, 2, 4, 8, 16, 32, 64};
    const uint64_t ops_per_thread = quick ? 20000 : 100000;

    std::printf("cache-hit throughput (%d keys, %llu ops/thread):\n",
                256, static_cast<unsigned long long>(ops_per_thread));
    w.key("cache").beginObject();
    w.key("default_shard_count")
        .value(static_cast<uint64_t>(default_shards));
    w.key("sweeps").beginArray();
    for (int shards : shard_set) {
        for (int threads : thread_set) {
            SweepRow row = runCacheSweep(shards, threads,
                                         ops_per_thread);
            std::printf(
                "  shards=%-4d threads=%-3d  %9.2f Mops/s  "
                "lock-wait %8.3f ms\n",
                row.shards, row.threads, row.opsPerSec / 1e6,
                static_cast<double>(row.lockWaitNs) / 1e6);
            w.beginObject();
            w.key("shards").value(row.shards);
            w.key("threads").value(row.threads);
            w.key("ops").value(row.ops);
            w.key("seconds").value(row.seconds);
            w.key("ops_per_sec").value(row.opsPerSec);
            w.key("lock_wait_ns").value(row.lockWaitNs);
            w.endObject();
        }
    }
    w.endArray();
    w.endObject();

    // ---- 2. packed vs byte-wise Pauli kernels ----------------------
    {
        std::printf("\npauli kernels (packed vs byte-wise):\n");
        w.key("pauli_kernels").beginObject();
        w.key("rows").beginArray();
        for (const KernelRow &row : runPauliKernels(quick)) {
            std::printf("  %-9s n=%-4d packed %8.2f ns  byte %9.2f ns"
                        "  speedup %6.1fx\n",
                        row.kernel, row.qubits, row.packedNs,
                        row.byteNs, row.speedup());
            w.beginObject();
            w.key("kernel").value(row.kernel);
            w.key("qubits").value(row.qubits);
            w.key("iters").value(row.iters);
            w.key("packed_ns").value(row.packedNs);
            w.key("byte_ns").value(row.byteNs);
            w.key("speedup").value(row.speedup());
            w.endObject();
        }
        w.endArray();
        w.endObject();
    }

    // ---- private artifact store for sections 3 and 4 ---------------
    fs::path store_root =
        fs::temp_directory_path() /
        ("tetris-perf-" + std::to_string(::getpid()));
    std::error_code ec;
    fs::remove_all(store_root, ec);

    // ---- 3. artifact load latency: cold / warm / buffered ----------
    {
        auto store = DiskCache::open(store_root.string());
        if (store == nullptr) {
            std::fprintf(stderr,
                         "fatal: cannot open perf store at %s\n",
                         store_root.string().c_str());
            return 1;
        }
        const int entries = quick ? 8 : 32;
        const int warm_rounds = quick ? 8 : 32;
        CompileResult sample =
            compileTetris(buildSyntheticUcc(8, 7), lineTopology(12));
        std::vector<uint64_t> keys;
        for (int i = 0; i < entries; ++i) {
            keys.push_back(keyAt(1000 + i));
            store->store(keys.back(), sample);
        }
        uint64_t bytes_total = store->usage().bytes;

        LoadStats cold = timeLoads(*store, keys, 1);
        LoadStats warm = timeLoads(*store, keys, warm_rounds);

        // Buffered fallback for comparison: the env toggle is read
        // per load(), so flipping it mid-process is supported.
        ::setenv("TETRIS_DISK_MMAP", "0", 1);
        LoadStats buffered = timeLoads(*store, keys, warm_rounds);
        ::unsetenv("TETRIS_DISK_MMAP");

        std::printf(
            "\nartifact load (%d entries, %llu bytes):\n"
            "  cold     %9.0f ns/load\n"
            "  warm     %9.0f ns/load (mmap)\n"
            "  buffered %9.0f ns/load (fallback)\n",
            entries, static_cast<unsigned long long>(bytes_total),
            cold.avgNs, warm.avgNs, buffered.avgNs);

        w.key("artifact_load").beginObject();
        w.key("entries").value(static_cast<uint64_t>(entries));
        w.key("bytes_total").value(bytes_total);
        w.key("mmap_enabled")
            .value(serialize::MappedFile::mmapEnabled());
        w.key("cold").beginObject();
        w.key("loads").value(cold.loads);
        w.key("avg_ns").value(cold.avgNs);
        w.endObject();
        w.key("warm").beginObject();
        w.key("loads").value(warm.loads);
        w.key("avg_ns").value(warm.avgNs);
        w.endObject();
        w.key("buffered").beginObject();
        w.key("loads").value(buffered.loads);
        w.key("avg_ns").value(buffered.avgNs);
        w.endObject();
        w.key("mmap_loads")
            .value(static_cast<uint64_t>(store->mmapLoads()));
        w.key("buffered_loads")
            .value(static_cast<uint64_t>(store->bufferedLoads()));
        w.endObject();
        store->clear();
    }

    // ---- 4. engine-level cold/warm sweep ---------------------------
    {
        auto make_jobs = [&] {
            std::vector<CompileJob> jobs;
            std::vector<int> sizes =
                quick ? std::vector<int>{5, 6}
                      : std::vector<int>{5, 6, 7, 8};
            auto hw = shareDevice(lineTopology(10));
            for (int n : sizes) {
                for (const char *id : {"tetris", "paulihedral"}) {
                    jobs.push_back(makeJob(
                        std::string(id) + "/ucc" + std::to_string(n),
                        buildSyntheticUcc(n, 100 + n), hw,
                        PipelineRegistry::instance().create(id)));
                }
            }
            return jobs;
        };

        auto run_engine = [&](const char *label, JsonWriter &out) {
            EngineOptions opts;
            opts.diskCache = DiskCache::open(store_root.string());
            Engine engine(opts);
            auto t0 = std::chrono::steady_clock::now();
            engine.compileAll(make_jobs());
            double elapsed = secondsSince(t0);
            std::printf("  %-5s %6.3f s  completed=%llu disk_hits=%llu "
                        "mmap_loads=%llu\n",
                        label, elapsed,
                        static_cast<unsigned long long>(
                            engine.metrics().count("jobs.completed")),
                        static_cast<unsigned long long>(
                            engine.metrics().count("jobs.disk_hits")),
                        static_cast<unsigned long long>(
                            opts.diskCache->mmapLoads()));
            out.key(label).beginObject();
            out.key("seconds").value(elapsed);
            out.key("completed")
                .value(engine.metrics().count("jobs.completed"));
            out.key("disk_hits")
                .value(engine.metrics().count("jobs.disk_hits"));
            out.key("writes").value(
                static_cast<uint64_t>(opts.diskCache->writes()));
            out.key("mmap_loads").value(
                static_cast<uint64_t>(opts.diskCache->mmapLoads()));
            out.key("buffered_loads").value(
                static_cast<uint64_t>(opts.diskCache->bufferedLoads()));
            out.key("shard_count")
                .value(engine.metrics().count("cache.shard_count"));
            out.key("lock_wait_ns")
                .value(engine.metrics().count("cache.lock_wait_ns"));
            out.endObject();
        };

        std::printf("\nengine cold/warm sweep:\n");
        w.key("engine").beginObject();
        run_engine("cold", w);
        run_engine("warm", w);
        w.endObject();
    }

    // ---- 5. instrument overhead ------------------------------------
    // ns/op for each observability primitive, measured tight-loop on
    // one thread: the string-keyed metrics path (map lookup under the
    // registry mutex), the interned-handle path (one relaxed atomic
    // add), wait-free histogram recording, and a TraceSpan on a
    // disabled tracer (the always-on cost every job pays when
    // TETRIS_TRACE is unset — must stay in low single-digit ns).
    {
        const uint64_t iters = quick ? 200000 : 2000000;
        MetricsRegistry registry;
        auto time_ns_per_op = [&](auto &&body) {
            auto t0 = std::chrono::steady_clock::now();
            for (uint64_t i = 0; i < iters; ++i)
                body(i);
            return secondsSince(t0) * 1e9 /
                   static_cast<double>(iters);
        };

        double string_ns = time_ns_per_op(
            [&](uint64_t) { registry.addSeconds("perf.string", 1e-9); });
        MetricsRegistry::Handle handle =
            registry.timerHandle("perf.handle");
        double handle_ns = time_ns_per_op(
            [&](uint64_t) { registry.addSeconds(handle, 1e-9); });
        Histogram &hist = registry.histogram("perf.hist");
        double hist_ns =
            time_ns_per_op([&](uint64_t i) { hist.record(i); });
        Tracer disabled_tracer;
        double span_ns = time_ns_per_op([&](uint64_t) {
            TraceSpan span(&disabled_tracer, "perf", "perf");
        });

        std::printf("\ninstrument overhead (%llu iters):\n"
                    "  timer (string key) %8.2f ns/op\n"
                    "  timer (handle)     %8.2f ns/op\n"
                    "  histogram record   %8.2f ns/op\n"
                    "  span (disabled)    %8.2f ns/op\n",
                    static_cast<unsigned long long>(iters), string_ns,
                    handle_ns, hist_ns, span_ns);

        w.key("metrics_overhead").beginObject();
        w.key("iters").value(iters);
        w.key("timer_string_ns").value(string_ns);
        w.key("timer_handle_ns").value(handle_ns);
        w.key("histogram_record_ns").value(hist_ns);
        w.key("span_disabled_ns").value(span_ns);
        w.endObject();
    }

    // ---- 6. observability-plane overhead ---------------------------
    // Two numbers the obs plane must keep honest: the cost of a
    // disarmed event log at every engine event site (the guarded
    // `enabled()` check everyone pays when TETRIS_EVENT_LOG is unset
    // — must stay at a few ns/op, asserted by smoke.sh), and the
    // latency of a full GET /metrics scrape, both while workers are
    // compiling and against an idle engine.
    {
        const uint64_t iters = quick ? 200000 : 2000000;
        EventLog disarmed;
        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t i = 0; i < iters; ++i) {
            if (disarmed.enabled()) {
                disarmed.record("perf",
                                {EventLog::Field::u64("i", i)});
            }
        }
        double disabled_ns =
            secondsSince(t0) * 1e9 / static_cast<double>(iters);

        EngineOptions opts;
        opts.obsServer = "127.0.0.1:0";
        Engine engine(opts);
        double load_avg_us = 0.0, idle_avg_us = 0.0;
        uint64_t load_scrapes = 0;
        uint64_t body_bytes = 0;
        const int idle_rounds = quick ? 20 : 100;
        if (engine.obsPort() > 0) {
            std::vector<CompileJob> jobs;
            auto hw = shareDevice(lineTopology(10));
            const int njobs = quick ? 6 : 16;
            for (int i = 0; i < njobs; ++i) {
                jobs.push_back(makeJob(
                    "obs/ucc" + std::to_string(i),
                    buildSyntheticUcc(5 + i % 3, 500 + i), hw));
            }
            const size_t total = jobs.size();
            std::thread load([&engine, &jobs] {
                engine.compileAll(std::move(jobs));
            });
            double load_us = 0.0;
            while (engine.finishedCount() < total) {
                int status = 0;
                auto s0 = std::chrono::steady_clock::now();
                std::string body =
                    obsHttpGet(engine.obsPort(), "/metrics", &status);
                if (status == 200) {
                    load_us += secondsSince(s0) * 1e6;
                    ++load_scrapes;
                    body_bytes = body.size();
                }
            }
            load.join();
            if (load_scrapes > 0)
                load_avg_us =
                    load_us / static_cast<double>(load_scrapes);

            double idle_us = 0.0;
            for (int i = 0; i < idle_rounds; ++i) {
                int status = 0;
                auto s0 = std::chrono::steady_clock::now();
                std::string body =
                    obsHttpGet(engine.obsPort(), "/metrics", &status);
                idle_us += secondsSince(s0) * 1e6;
                body_bytes = body.size();
            }
            idle_avg_us = idle_us / static_cast<double>(idle_rounds);
        } else {
            std::fprintf(stderr,
                         "warn: obs server failed to bind; scrape "
                         "latencies unmeasured\n");
        }

        std::printf("\nobs-plane overhead:\n"
                    "  event log (disabled) %8.2f ns/op\n"
                    "  /metrics under load  %8.1f us/scrape "
                    "(%llu scrapes)\n"
                    "  /metrics idle        %8.1f us/scrape "
                    "(%llu-byte body)\n",
                    disabled_ns, load_avg_us,
                    static_cast<unsigned long long>(load_scrapes),
                    idle_avg_us,
                    static_cast<unsigned long long>(body_bytes));

        w.key("obs_overhead").beginObject();
        w.key("iters").value(iters);
        w.key("event_log_disabled_ns").value(disabled_ns);
        w.key("scrape_load_avg_us").value(load_avg_us);
        w.key("scrape_load_count").value(load_scrapes);
        w.key("scrape_idle_avg_us").value(idle_avg_us);
        w.key("scrape_body_bytes").value(body_bytes);
        w.endObject();
    }

    fs::remove_all(store_root, ec);
    w.endObject();

    const char *path = "BENCH_perf.json";
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "warn: cannot write %s\n", path);
        return 1;
    }
    out << w.str() << "\n";
    std::printf("[wrote %s]\n", path);
    return 0;
}
