/**
 * @file
 * Regenerates Fig. 16: PH and Tetris compiled with and without the
 * peephole ("Qiskit O3") pass. The paper's observation: O3 recovers
 * a lot for PH (which delegates cancellation entirely), while
 * Tetris performs its own structural cancellation and gains less.
 * The 4 configurations x N molecules run as one engine batch.
 */

#include <cstdio>

#include "bench_util.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 16: with/without peephole (Qiskit O3 stand-in)",
                "CNOT count and depth; JW encoder, heavy-hex 65q.");

    auto hw = shareDevice(ibmIthaca65());
    Engine &engine = benchEngine();

    PaulihedralOptions ph_raw;
    ph_raw.runPeephole = false;
    TetrisOptions tet_raw;
    tet_raw.runPeephole = false;

    const size_t stacks = 4; // ph-raw, ph, tetris-raw, tetris
    auto mols = benchMolecules();
    std::vector<CompileJob> jobs;
    for (const auto &spec : mols) {
        auto blocks = buildMolecule(spec, "jw");
        jobs.push_back(makeJob(spec.name + "/ph-raw", blocks, hw,
                               makePaulihedralPipeline(ph_raw)));
        jobs.push_back(makeJob(spec.name + "/ph+o3", blocks, hw,
                               makePaulihedralPipeline()));
        jobs.push_back(makeJob(spec.name + "/tetris-raw", blocks, hw,
                               makeTetrisPipeline(tet_raw)));
        jobs.push_back(makeJob(spec.name + "/tetris+o3",
                               std::move(blocks), hw,
                               makeTetrisPipeline()));
    }

    auto records = runJobs(engine, std::move(jobs));

    TablePrinter table({"Bench", "PH raw CNOT", "PH+O3 CNOT",
                        "Tetris raw CNOT", "Tetris+O3 CNOT",
                        "PH raw depth", "PH+O3 depth",
                        "Tetris raw depth", "Tetris+O3 depth"});
    for (size_t i = 0; i < mols.size(); ++i) {
        const auto *r = &records[stacks * i];
        table.addRow({mols[i].name,
                      formatCount(r[0].second->stats.cnotCount),
                      formatCount(r[1].second->stats.cnotCount),
                      formatCount(r[2].second->stats.cnotCount),
                      formatCount(r[3].second->stats.cnotCount),
                      formatCount(r[0].second->stats.depth),
                      formatCount(r[1].second->stats.depth),
                      formatCount(r[2].second->stats.depth),
                      formatCount(r[3].second->stats.depth)});
    }
    table.print();
    writeBenchJson("fig16", records, engine);
    return 0;
}
