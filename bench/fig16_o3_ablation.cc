/**
 * @file
 * Regenerates Fig. 16: PH and Tetris compiled with and without the
 * peephole ("Qiskit O3") pass. The paper's observation: O3 recovers
 * a lot for PH (which delegates cancellation entirely), while
 * Tetris performs its own structural cancellation and gains less.
 */

#include <cstdio>

#include "baselines/paulihedral.hh"
#include "bench_util.hh"
#include "core/compiler.hh"
#include "hardware/topologies.hh"

using namespace tetris;
using namespace tetris::bench;

int
main()
{
    printBanner("Fig. 16: with/without peephole (Qiskit O3 stand-in)",
                "CNOT count and depth; JW encoder, heavy-hex 65q.");

    CouplingGraph hw = ibmIthaca65();
    TablePrinter table({"Bench", "PH raw CNOT", "PH+O3 CNOT",
                        "Tetris raw CNOT", "Tetris+O3 CNOT",
                        "PH raw depth", "PH+O3 depth",
                        "Tetris raw depth", "Tetris+O3 depth"});

    for (const auto &spec : benchMolecules()) {
        auto blocks = buildMolecule(spec, "jw");

        PaulihedralOptions ph_raw_opts;
        ph_raw_opts.runPeephole = false;
        CompileResult ph_raw = compilePaulihedral(blocks, hw, ph_raw_opts);
        CompileResult ph = compilePaulihedral(blocks, hw);

        TetrisOptions tet_raw_opts;
        tet_raw_opts.runPeephole = false;
        CompileResult tet_raw = compileTetris(blocks, hw, tet_raw_opts);
        CompileResult tet = compileTetris(blocks, hw);

        table.addRow({spec.name, formatCount(ph_raw.stats.cnotCount),
                      formatCount(ph.stats.cnotCount),
                      formatCount(tet_raw.stats.cnotCount),
                      formatCount(tet.stats.cnotCount),
                      formatCount(ph_raw.stats.depth),
                      formatCount(ph.stats.depth),
                      formatCount(tet_raw.stats.depth),
                      formatCount(tet.stats.depth)});
    }
    table.print();
    return 0;
}
