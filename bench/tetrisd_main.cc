/**
 * @file
 * tetrisd: the resident compile daemon.
 *
 * Binds the serve layer (src/serve/server.hh) over one long-lived
 * Engine and runs until SIGTERM/SIGINT, then drains gracefully:
 * stop accepting, answer every in-flight request, flush the
 * write-behind persists, exit 0. While draining, /healthz (obs
 * plane, TETRIS_OBS_ADDR) reports "draining" so load balancers stop
 * routing here before the socket closes.
 *
 *   tetrisd [--port N] [--host H] [--unix PATH] [--port-file PATH]
 *           [--no-verify] [--cancel-queued-on-signal]
 *
 *   --port N       TCP listen port (default 0 = ephemeral; -1 = off)
 *   --host H       TCP bind host (default 127.0.0.1)
 *   --unix PATH    also listen on a Unix-domain socket
 *   --port-file P  write the bound TCP port to P (scripts discover
 *                  an ephemeral port this way — see scripts/smoke.sh)
 *   --no-verify    skip the semantic verifier on served results
 *   --cancel-queued-on-signal
 *                  on SIGTERM, cancel queued-but-unstarted jobs
 *                  (clients get `compile_cancelled` error frames)
 *                  instead of compiling out the backlog
 *
 * Environment: TETRIS_SERVE_MAX_CLIENTS / TETRIS_SERVE_QUEUE /
 * TETRIS_SERVE_MAX_FRAME_MB (admission control), TETRIS_CACHE_DIR
 * (persistent artifact store), TETRIS_OBS_ADDR (/metrics + /healthz),
 * TETRIS_ENGINE_THREADS (worker pool).
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/net.hh"

#if TETRIS_HAVE_SOCKETS

#include <signal.h>
#include <unistd.h>

#include "engine/disk_cache.hh"
#include "engine/engine.hh"
#include "serve/server.hh"

namespace
{

/** Self-pipe: the signal handler's only job is one async-safe write. */
int g_signal_pipe[2] = {-1, -1};

extern "C" void
onShutdownSignal(int)
{
    const char byte = 1;
    // A full pipe just means a signal is already pending; dropping
    // the write is fine.
    (void)!::write(g_signal_pipe[1], &byte, 1);
}

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--port N] [--host H] [--unix PATH] "
                 "[--port-file PATH] [--no-verify] "
                 "[--cancel-queued-on-signal]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tetris;

    serve::ServeOptions opts;
    opts.tcpPort = 0; // ephemeral by default; --port overrides
    std::string port_file;
    bool verify = true;
    bool cancel_queued = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--port") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.tcpPort = std::atoi(v);
        } else if (arg == "--host") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.tcpHost = v;
        } else if (arg == "--unix") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            opts.unixPath = v;
        } else if (arg == "--port-file") {
            const char *v = next();
            if (!v)
                return usage(argv[0]);
            port_file = v;
        } else if (arg == "--no-verify") {
            verify = false;
        } else if (arg == "--cancel-queued-on-signal") {
            cancel_queued = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (::pipe(g_signal_pipe) != 0) {
        std::perror("tetrisd: pipe");
        return 1;
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onShutdownSignal;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    ::signal(SIGPIPE, SIG_IGN);

    EngineOptions eopts;
    eopts.verify = verify;
    eopts.diskCache = DiskCache::openFromEnv();
    Engine engine(eopts);

    auto server = serve::ServeServer::start(engine, opts);
    if (!server) {
        std::fprintf(stderr, "tetrisd: no listener could be bound\n");
        return 1;
    }

    if (server->port() != 0)
        std::printf("tetrisd: listening on %s:%d\n",
                    opts.tcpHost.c_str(), server->port());
    if (!server->unixPath().empty())
        std::printf("tetrisd: listening on unix:%s\n",
                    server->unixPath().c_str());
    std::printf("tetrisd: pid %d, verify %s, disk cache %s\n",
                static_cast<int>(::getpid()), verify ? "on" : "off",
                eopts.diskCache ? "on" : "off");
    std::fflush(stdout);

    if (!port_file.empty()) {
        if (std::FILE *f = std::fopen(port_file.c_str(), "w")) {
            std::fprintf(f, "%d\n", server->port());
            std::fclose(f);
        } else {
            std::fprintf(stderr,
                         "tetrisd: cannot write port file %s\n",
                         port_file.c_str());
            return 1;
        }
    }

    // Park until a shutdown signal lands on the self-pipe.
    char byte = 0;
    while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
    }

    std::printf("tetrisd: shutdown signal, draining%s...\n",
                cancel_queued ? " (cancelling queued jobs)" : "");
    std::fflush(stdout);
    server->drain(cancel_queued);
    std::printf("tetrisd: drained after %llu requests, exiting\n",
                static_cast<unsigned long long>(
                    server->requestsServed()));
    return 0;
}

#else // !TETRIS_HAVE_SOCKETS

int
main()
{
    std::fprintf(stderr, "tetrisd: sockets unavailable on this "
                         "platform\n");
    return 1;
}

#endif // TETRIS_HAVE_SOCKETS
